"""Generators for Tables 1-4 of the paper (Section 6 and Section 2.4).

Each ``tableN_rows`` function regenerates the corresponding table:

* **Table 1** — lower bounds on load and upper bounds on resilience of
  strict, b-dissemination and b-masking quorum systems, evaluated for a
  concrete ``(n, b)``;
* **Table 2** — quorum size and fault tolerance of the ε-intersecting
  construction vs. the strict threshold and grid systems, for
  ``n ∈ {25, 100, 225, 400, 625, 900}`` and consistency target ε ≤ 10⁻³;
* **Table 3** — the same comparison for (b,ε)-dissemination systems with
  ``b = ⌊(√n - 1)/2⌋`` (the largest ``b`` for which all three constructions
  in the paper's table exist);
* **Table 4** — the same comparison for (b,ε)-masking systems.

Every row reports both *our* calibration (the smallest quorum size whose
exact ε meets the target — the library's honest reproduction) and the
*paper's* published ``ℓ`` (``PAPER_TABLE2/3/4``), together with the exact ε
our formulas assign to the paper's parameters, so EXPERIMENTS.md can record
paper-vs-measured side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import table1_bounds
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_quorum_size_for_dissemination,
    minimal_quorum_size_for_epsilon,
    minimal_quorum_size_for_masking,
)
from repro.analysis.intersection import (
    dissemination_epsilon_exact,
    intersection_epsilon_exact,
    masking_epsilon_exact,
)
from repro.exceptions import ExperimentError
from repro.quorum.byzantine import (
    ThresholdDisseminationQuorumSystem,
    ThresholdMaskingQuorumSystem,
)
from repro.quorum.grid import (
    GridDisseminationQuorumSystem,
    GridMaskingQuorumSystem,
    GridQuorumSystem,
)
from repro.quorum.threshold import MajorityQuorumSystem

#: Universe sizes used throughout Section 6.
PAPER_UNIVERSE_SIZES: Tuple[int, ...] = (25, 100, 225, 400, 625, 900)

#: Consistency target of Section 6: every probabilistic construction achieves
#: a guarantee of 0.999 or better.
PAPER_EPSILON: float = 1e-3

#: The ℓ values published in Table 2 (ε-intersecting construction).
PAPER_TABLE2: Dict[int, float] = {
    25: 1.80,
    100: 2.20,
    225: 2.40,
    400: 2.45,
    625: 2.48,
    900: 2.50,
}

#: The ℓ values published in Table 3 ((b,ε)-dissemination construction).
PAPER_TABLE3: Dict[int, float] = {
    25: 2.20,
    100: 2.40,
    225: 2.47,
    400: 2.50,
    625: 2.52,
    900: 2.57,
}

#: The ℓ values published in Table 4 ((b,ε)-masking construction).
PAPER_TABLE4: Dict[int, float] = {
    25: 3.00,
    100: 3.80,
    225: 4.27,
    400: 4.70,
    625: 4.92,
    900: 5.07,
}


def paper_byzantine_threshold(n: int) -> int:
    """The ``b`` used in Tables 3 and 4: ``⌊(√n - 1)/2⌋``.

    The paper picks "b = (√n − 1)/2, as this is the largest b for which all
    the constructions in the table work" (the grid constructions in
    particular).
    """
    return int((math.isqrt(n) - 1) // 2)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Entry:
    """One column of Table 1 for a concrete ``(n, b)``."""

    kind: str
    load_lower_bound: float
    max_resilience: Optional[int]


def table1_entries(n: int, b: int) -> List[Table1Entry]:
    """Evaluate Table 1 for concrete parameters (strict / dissemination / masking)."""
    rows = table1_bounds(n, b)
    return [
        Table1Entry(
            kind=kind,
            load_lower_bound=row.load_lower_bound,
            max_resilience=row.max_resilience,
        )
        for kind, row in rows.items()
    ]


# ---------------------------------------------------------------------------
# Table 2: ε-intersecting vs threshold vs grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 plus the paper-vs-measured calibration data."""

    n: int
    ell: float
    quorum_size: int
    fault_tolerance: int
    epsilon: float
    threshold_quorum_size: int
    threshold_fault_tolerance: int
    grid_quorum_size: int
    grid_fault_tolerance: int
    paper_ell: Optional[float]
    paper_quorum_size: Optional[int]
    paper_epsilon: Optional[float]


def table2_rows(
    sizes: Sequence[int] = PAPER_UNIVERSE_SIZES,
    epsilon: float = PAPER_EPSILON,
) -> List[Table2Row]:
    """Regenerate Table 2 (ε-intersecting vs. threshold vs. grid)."""
    rows: List[Table2Row] = []
    for n in sizes:
        quorum_size = minimal_quorum_size_for_epsilon(n, epsilon)
        threshold = MajorityQuorumSystem(n)
        grid = GridQuorumSystem(n)
        paper_ell = PAPER_TABLE2.get(n)
        paper_q = round(paper_ell * math.sqrt(n)) if paper_ell is not None else None
        rows.append(
            Table2Row(
                n=n,
                ell=ell_for_quorum_size(n, quorum_size),
                quorum_size=quorum_size,
                fault_tolerance=n - quorum_size + 1,
                epsilon=intersection_epsilon_exact(n, quorum_size),
                threshold_quorum_size=threshold.quorum_size,
                threshold_fault_tolerance=threshold.fault_tolerance(),
                grid_quorum_size=grid.min_quorum_size(),
                grid_fault_tolerance=grid.fault_tolerance(),
                paper_ell=paper_ell,
                paper_quorum_size=paper_q,
                paper_epsilon=(
                    intersection_epsilon_exact(n, paper_q) if paper_q is not None else None
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3: (b, ε)-dissemination vs threshold vs grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3 plus the paper-vs-measured calibration data."""

    n: int
    b: int
    ell: float
    quorum_size: int
    fault_tolerance: int
    epsilon: float
    threshold_quorum_size: int
    threshold_fault_tolerance: int
    grid_quorum_size: int
    grid_fault_tolerance: int
    paper_ell: Optional[float]
    paper_quorum_size: Optional[int]
    paper_epsilon: Optional[float]


def table3_rows(
    sizes: Sequence[int] = PAPER_UNIVERSE_SIZES,
    epsilon: float = PAPER_EPSILON,
) -> List[Table3Row]:
    """Regenerate Table 3 ((b,ε)-dissemination vs. strict dissemination systems)."""
    rows: List[Table3Row] = []
    for n in sizes:
        b = paper_byzantine_threshold(n)
        quorum_size = minimal_quorum_size_for_dissemination(n, b, epsilon)
        if quorum_size is None:
            raise ExperimentError(
                f"no dissemination construction achieves epsilon={epsilon} for n={n}, b={b}"
            )
        threshold = ThresholdDisseminationQuorumSystem(n, b)
        grid = GridDisseminationQuorumSystem(n, b)
        paper_ell = PAPER_TABLE3.get(n)
        paper_q = round(paper_ell * math.sqrt(n)) if paper_ell is not None else None
        rows.append(
            Table3Row(
                n=n,
                b=b,
                ell=ell_for_quorum_size(n, quorum_size),
                quorum_size=quorum_size,
                fault_tolerance=n - quorum_size + 1,
                epsilon=dissemination_epsilon_exact(n, quorum_size, b),
                threshold_quorum_size=threshold.quorum_size,
                threshold_fault_tolerance=threshold.fault_tolerance(),
                grid_quorum_size=grid.min_quorum_size(),
                grid_fault_tolerance=grid.fault_tolerance(),
                paper_ell=paper_ell,
                paper_quorum_size=paper_q,
                paper_epsilon=(
                    dissemination_epsilon_exact(n, paper_q, b) if paper_q is not None else None
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 4: (b, ε)-masking vs threshold vs grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """One row of Table 4 plus the paper-vs-measured calibration data."""

    n: int
    b: int
    ell: float
    quorum_size: int
    read_threshold: int
    fault_tolerance: int
    epsilon: float
    threshold_quorum_size: int
    threshold_fault_tolerance: int
    grid_quorum_size: int
    grid_fault_tolerance: int
    paper_ell: Optional[float]
    paper_quorum_size: Optional[int]
    paper_epsilon: Optional[float]


def table4_rows(
    sizes: Sequence[int] = PAPER_UNIVERSE_SIZES,
    epsilon: float = PAPER_EPSILON,
) -> List[Table4Row]:
    """Regenerate Table 4 ((b,ε)-masking vs. strict masking systems)."""
    rows: List[Table4Row] = []
    for n in sizes:
        b = paper_byzantine_threshold(n)
        quorum_size = minimal_quorum_size_for_masking(n, b, epsilon)
        if quorum_size is None:
            raise ExperimentError(
                f"no masking construction achieves epsilon={epsilon} for n={n}, b={b}"
            )
        threshold = ThresholdMaskingQuorumSystem(n, b)
        grid = GridMaskingQuorumSystem(n, b)
        paper_ell = PAPER_TABLE4.get(n)
        paper_q = round(paper_ell * math.sqrt(n)) if paper_ell is not None else None
        rows.append(
            Table4Row(
                n=n,
                b=b,
                ell=ell_for_quorum_size(n, quorum_size),
                quorum_size=quorum_size,
                read_threshold=math.ceil(quorum_size * quorum_size / (2.0 * n)),
                fault_tolerance=n - quorum_size + 1,
                epsilon=masking_epsilon_exact(n, quorum_size, b),
                threshold_quorum_size=threshold.quorum_size,
                threshold_fault_tolerance=threshold.fault_tolerance(),
                grid_quorum_size=grid.min_quorum_size(),
                grid_fault_tolerance=grid.fault_tolerance(),
                paper_ell=paper_ell,
                paper_quorum_size=paper_q,
                paper_epsilon=(
                    masking_epsilon_exact(n, paper_q, b) if paper_q is not None else None
                ),
            )
        )
    return rows
