"""The ``serve`` experiment: live service traffic under fault injection.

Where the ``consistency`` experiment validates the theorems with offline
Monte-Carlo trials, ``serve`` deploys the same declarative scenario as an
asyncio service (:mod:`repro.service`) and measures it the way an operator
would: throughput, latency percentiles, and safety-violation counts while
Byzantine forgers answer reads, messages drop, and live crash/recovery
churn runs underneath the traffic.

The default workload is a masking deployment whose threshold *provably*
filters the configured adversary: ``Rk(100, 30, b=3)`` has ``k = ⌈q²/2n⌉ =
5 > b``, so three colluding forgers can never muster the votes a reader
requires — any ``fabricated`` count other than zero would be a bug in the
service stack, which is exactly what the report asserts operationally.
The CLI exposes the knobs that matter for load (client count, reads per
client); the benchmark suite reuses the same builders.
"""

from __future__ import annotations

import os

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ExperimentError, ReproError
from repro.protocol.timestamps import Timestamp
from repro.service.load import (
    FaultInjectionSpec,
    ServiceLoadReport,
    ServiceLoadSpec,
    run_service_load,
)
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

#: Default service workload: enough concurrency to exercise interleaving,
#: small enough to finish in a couple of seconds on a laptop.
DEFAULT_CLIENTS = 200
DEFAULT_READS_PER_CLIENT = 5
DEFAULT_WRITES = 20


def serve_scenario(
    n: int = 100, quorum_size: int = 30, b: int = 3, byzantine: bool = True
) -> ScenarioSpec:
    """The masking scenario the ``serve`` experiment deploys.

    The defaults put the threshold strictly above the adversary
    (``k = 5 > b = 3``), so the zero-fabrication safety check is a theorem,
    not a statistical accident.  ``byzantine=False`` swaps the colluding
    forgers for the same number of benign crashes — the variant deployed
    under latency-aware selection, which the spec layer (correctly) refuses
    to combine with a Byzantine adversary.
    """
    system = ProbabilisticMaskingSystem(n, quorum_size, b)
    if system.read_threshold <= b:
        raise ExperimentError(
            f"the serve scenario wants k > b so zero fabrication is provable; "
            f"got k={system.read_threshold}, b={b}"
        )
    if not byzantine:
        return ScenarioSpec(system=system, failure_model=FailureModel.random_crashes(b))
    return ScenarioSpec(
        system=system,
        failure_model=FailureModel.colluding_forgers(
            b, "FORGED", Timestamp.forged_maximum()
        ),
    )


def serve_load_spec(
    clients: int = DEFAULT_CLIENTS,
    reads_per_client: int = DEFAULT_READS_PER_CLIENT,
    writes: int = DEFAULT_WRITES,
    seed: int = 0,
    scenario: ScenarioSpec = None,
    dispatch: str = "batched",
    selection: str = "strategy",
    transport: str = "inproc",
    shards: int = 1,
    keys: int = 1,
    key_skew: float = 0.0,
    writers: int = None,
    contention: float = 0.0,
    codec: str = "json",
    processes: int = 0,
    trace_sample: float = 0.0,
    monitor_epsilon: bool = False,
    anti_entropy: AntiEntropySpec = None,
) -> ServiceLoadSpec:
    """The full soak configuration: forgers + drops + latency + live churn.

    ``dispatch`` picks the RPC path (``batched`` coalesced fast path, the
    default, or the original ``per-rpc`` oracle); ``selection`` picks the
    quorum-selection mode.  ``transport`` moves the same soak between the
    simulated in-process message layer and real localhost TCP sockets;
    ``shards``/``keys``/``key_skew`` spread it over a multi-register
    sharded deployment (each shard its own replica group and failure plan).
    A multi-shard run needs at least as many keys as shards, and keeping
    ``writes >= keys`` avoids reads of never-written registers dominating
    the outcome counts.  ``writers`` splits the write workload across that
    many concurrent writer clients (each under its own writer identity);
    ``contention`` is the probability a multi-key write is redirected to
    the hottest key, colliding the writers on one register.

    The default soak deploys Byzantine forgers, which
    :class:`~repro.service.load.ServiceLoadSpec` refuses to combine with
    ``latency-aware`` selection (the ε accounting would be void) — so with
    ``selection="latency-aware"`` and no explicit ``scenario`` the
    Byzantine-free crash variant of the scenario is deployed instead.  An
    explicitly passed Byzantine ``scenario`` still raises.

    ``codec`` picks the TCP wire codec (``"json"`` or the struct-packed
    ``"binary"``, negotiated per connection).  ``processes > 0`` moves the
    soak onto a :class:`~repro.service.cluster.ClusterDeployment` — one
    server process per shard plus that many load-worker processes; both
    imply ``transport="tcp"``.  Live crash/recovery churn is in-loop
    surgery on the server objects, which a process boundary makes
    unreachable, so a multi-process soak runs without churn (the
    crashed-shard path is covered by the cluster tests instead).

    ``trace_sample`` turns on end-to-end quorum tracing for that fraction
    of operations (0, the default, keeps the hot path untouched);
    ``monitor_epsilon`` arms the online ε-monitor, which compares the
    sliding-window stale/fabricated-accepted rate against the scenario's
    predicted ε and records structured alerts on the report.

    ``anti_entropy`` arms the §1.1 diffusion mechanism for the deployment:
    piggybacked read-repair on every client plus (for a gossiping spec) a
    background gossip task per shard — the configuration under which the
    probe-fallback round all but disappears from the read path.
    """
    if codec != "json" or processes > 0:
        transport = "tcp"
    if scenario is None:
        scenario = serve_scenario(byzantine=selection != "latency-aware")
    fault_injection = (
        FaultInjectionSpec(crash_count=0)
        if processes > 0
        else FaultInjectionSpec(crash_count=5, interval=0.002)
    )
    return ServiceLoadSpec(
        scenario=scenario,
        clients=clients,
        reads_per_client=reads_per_client,
        writes=writes,
        latency=0.0002,
        jitter=0.0001,
        drop_probability=0.01,
        # The in-process deadline is simulated-time-tight; over real sockets
        # the deadline must absorb wall-clock queueing (hundreds of clients
        # share one event loop with the servers in this harness), or
        # timeouts cascade into probe-ping storms.
        deadline=0.005 if transport == "inproc" else 0.25,
        fault_injection=fault_injection,
        transport=transport,
        shards=shards,
        keys=keys,
        key_skew=key_skew,
        dispatch=dispatch,
        selection=selection,
        writers=writers,
        contention=contention,
        codec=codec,
        processes=processes,
        trace_sample=trace_sample,
        monitor_epsilon=monitor_epsilon,
        anti_entropy=anti_entropy,
        seed=seed,
    )


def run_serve(
    clients: int = DEFAULT_CLIENTS,
    reads_per_client: int = DEFAULT_READS_PER_CLIENT,
    writes: int = DEFAULT_WRITES,
    seed: int = 0,
    dispatch: str = "batched",
    selection: str = "strategy",
    transport: str = "inproc",
    shards: int = 1,
    keys: int = 1,
    key_skew: float = 0.0,
    writers: int = None,
    contention: float = 0.0,
    codec: str = "json",
    processes: int = None,
    trace_sample: float = 0.0,
    trace_out: str = None,
    metrics_out: str = None,
    monitor_epsilon: bool = False,
    anti_entropy: bool = False,
    ae_fanout: int = 2,
    ae_interval: float = 0.002,
    ae_repair_budget: int = 4,
) -> str:
    """Run the service soak and render its report (the CLI entry point).

    ``processes=None`` keeps the classic in-loop harness; ``processes=0``
    (the bare ``--processes`` flag) auto-scales load workers to the
    machine's cores; a positive value pins the worker count.  Either
    spelling deploys one server process per shard and implies the TCP
    transport and no live churn.

    ``trace_sample`` samples that fraction of quorum operations into
    end-to-end traces; ``trace_out`` writes them as JSON lines (one trace
    per line).  ``metrics_out`` dumps the run's metrics registry snapshots
    (per component plus a cluster-wide merge) as one JSON document.
    ``monitor_epsilon`` arms the online ε-monitor.

    ``anti_entropy`` arms background freshness (piggybacked read-repair +
    per-shard gossip) with the ``ae_*`` knobs; the report's anti-entropy
    line then shows the repairs and gossip rounds the run banked while the
    probe-fallback count drops.
    """
    if trace_out is not None and trace_sample <= 0.0:
        trace_sample = 1.0  # a trace dump with nothing sampled is a footgun
    if shards > 1 and keys == 1:
        # A sharded run needs keys to hash; default to a key per shard and
        # enough writes that every register is written at least once.
        keys = shards
    if processes is not None and processes == 0:
        processes = os.cpu_count() or 1
    if processes is not None:
        # The load partitioner hands each worker a disjoint key/client
        # slice, so workers can never outnumber either.
        processes = max(1, min(processes, keys, clients))
    try:
        spec = serve_load_spec(
            clients=clients,
            reads_per_client=reads_per_client,
            writes=max(writes, keys),
            seed=seed,
            dispatch=dispatch,
            selection=selection,
            transport=transport,
            shards=shards,
            keys=keys,
            key_skew=key_skew,
            writers=writers,
            contention=contention,
            codec=codec,
            processes=processes or 0,
            trace_sample=trace_sample,
            monitor_epsilon=monitor_epsilon,
            anti_entropy=(
                AntiEntropySpec(
                    fanout=ae_fanout,
                    interval=ae_interval,
                    repair_budget=ae_repair_budget,
                )
                if anti_entropy
                else None
            ),
        )
    except ReproError as error:
        raise ExperimentError(str(error)) from error
    report = run_service_load(spec)
    if trace_out is not None:
        dump_traces(report, trace_out)
    if metrics_out is not None:
        dump_metrics(report, metrics_out)
    return render_serve(report)


def dump_traces(report: ServiceLoadReport, path: str) -> int:
    """Write the report's sampled traces as JSON lines; returns the count."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        for trace in report.traces:
            handle.write(json.dumps(trace, sort_keys=True) + "\n")
    return len(report.traces)


def dump_metrics(report: ServiceLoadReport, path: str) -> dict:
    """Write the run's metrics as one JSON document; returns the document.

    The document carries the raw per-component snapshots (one per client
    pool, shard server or worker), a cluster-wide merge, and — when the
    ε-monitor was armed — its final state including any alerts.
    """
    import json

    from repro.obs.metrics import merge_snapshots

    document = {
        "snapshots": report.metrics,
        "merged": merge_snapshots(report.metrics),
        "epsilon_monitor": report.epsilon_monitor,
        "epsilon_alerts": report.epsilon_alerts,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def render_serve(report: ServiceLoadReport) -> str:
    """The experiment's report block, with the safety verdict spelled out."""
    verdict = (
        "OK: no fabricated value was ever accepted"
        if report.violations == 0
        else f"VIOLATION: {report.violations} fabricated reads accepted"
    )
    return f"{report.render()}\n  safety verdict    {verdict}"
