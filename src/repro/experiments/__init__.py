"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.tables` — Tables 1-4 (bounds; quorum size and
  fault tolerance of the probabilistic constructions vs. the strict
  threshold and grid baselines);
* :mod:`repro.experiments.figures` — Figures 1-3 (failure-probability
  curves of the probabilistic constructions vs. the strict lower bound and
  the strict threshold constructions);
* :mod:`repro.experiments.report` — plain-text rendering of tables and
  curve series;
* :mod:`repro.experiments.runner` — command line entry point
  (``python -m repro.experiments.runner --experiment all``).

The benchmark suite under ``benchmarks/`` is a thin wrapper around these
generators; EXPERIMENTS.md records the paper-vs-measured comparison they
produce.
"""

from repro.experiments.tables import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table1Entry,
    Table2Row,
    Table3Row,
    Table4Row,
    table1_entries,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.experiments.figures import (
    FigureCurves,
    figure1_curves,
    figure2_curves,
    figure3_curves,
)
from repro.experiments.report import (
    render_figure,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "Table1Entry",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "table1_entries",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "FigureCurves",
    "figure1_curves",
    "figure2_curves",
    "figure3_curves",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_figure",
]
