"""The ``contention`` experiment: ε vs quorum size under write contention.

The paper's trade is one sentence: give up a tiny, quantified probability
ε of non-intersection and the load drops from the strict-system optimum
``Ω(1/√n)`` *per quorum of size ~n/2* to ``ℓ/√n`` with quorums of size
``ℓ√n``.  This experiment makes the trade visible where it actually
bites — under **write contention**.  ``writers`` concurrent clients race
their writes on one register (writer-id tie-broken timestamps decide the
winner); a subsequent read misses the settled winner exactly when its
quorum fails to intersect the winning write's quorum, so the observed
miss rate tracks the analytical ε of the construction.

Two columns of systems run through the *same* Monte-Carlo engines:

* the paper's ``R(n, q)`` for a sweep of quorum sizes ``q`` — ε falls
  roughly like ``e^{-q²/n}`` while the load is ``q/n``;
* the strict **Maekawa grid** (one full row + one full column,
  ``q = 2√n - 1``), wrapped as an explicit
  :class:`~repro.core.epsilon_intersecting.EpsilonIntersectingSystem`
  so the identical engine code drives it.  Every grid pair intersects,
  so its exact ε is 0 and its observed miss rate must be 0 — the
  baseline the probabilistic constructions are traded against.

At small ``n`` the grid looks competitive (its load is ``~2/√n``); the
paper's point is asymptotic — ``R(n, ℓ√n)`` keeps ε fixed with load
``ℓ/√n``, √n-fold better than any strict system of comparable
availability, and the rendered table reports the exact numbers so the
crossover is legible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.epsilon_intersecting import (
    EpsilonIntersectingSystem,
    UniformEpsilonIntersectingSystem,
)
from repro.exceptions import ExperimentError, ReproError
from repro.quorum.grid import GridQuorumSystem
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import estimate_read_consistency
from repro.simulation.scenario import ScenarioSpec

#: Default universe: a perfect square, so the grid baseline exists.
DEFAULT_N = 36
#: Default contending writers per trial.
DEFAULT_WRITERS = 3
#: Default quorum-size sweep for ``R(n, q)`` (ℓ from ~1 to 3 at n=36).
DEFAULT_QUORUM_SIZES = (6, 9, 12, 15, 18)
DEFAULT_TRIALS = 20_000


@dataclass(frozen=True)
class ContentionPoint:
    """One system's measured row: construction, analytics, observation."""

    label: str
    quorum_size: int
    load: float
    epsilon: float
    observed_miss: float
    trials: int


def grid_baseline_system(n: int) -> EpsilonIntersectingSystem:
    """The √n-grid as an explicit ε-system (ε exactly 0, same engine path).

    Wrapping :class:`~repro.quorum.grid.GridQuorumSystem`'s enumerated
    quorums in an :class:`EpsilonIntersectingSystem` gives the strict
    baseline a uniform access strategy and the exact-ε machinery, so both
    Monte-Carlo engines drive it through the very code paths the
    probabilistic constructions use — the comparison changes the quorum
    system and *nothing else*.
    """
    grid = GridQuorumSystem(n)
    return EpsilonIntersectingSystem(n, grid.enumerate_quorums())


def contention_scenario(system, writers: int) -> ScenarioSpec:
    """``writers`` concurrent writers racing on one benign register."""
    return ScenarioSpec(
        system=system, failure_model=FailureModel.none(), writers=writers
    )


def _measure(
    label: str,
    system,
    quorum_size: int,
    writers: int,
    trials: int,
    seed: int,
    engine: str,
) -> ContentionPoint:
    report = estimate_read_consistency(
        contention_scenario(system, writers), trials=trials, seed=seed, engine=engine
    )
    return ContentionPoint(
        label=label,
        quorum_size=quorum_size,
        load=system.load(),
        epsilon=system.epsilon,
        observed_miss=report.error_fraction,
        trials=report.trials,
    )


def contention_curve(
    n: int = DEFAULT_N,
    quorum_sizes: Sequence[int] = DEFAULT_QUORUM_SIZES,
    writers: int = DEFAULT_WRITERS,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    engine: str = "batch",
) -> List[ContentionPoint]:
    """Measure ε vs quorum size under contention, grid baseline last.

    Each ``R(n, q)`` point and the grid baseline run the same scenario —
    same writer count, same failure model (none: the miss probability
    under test is ε itself, not crash availability), same engine, seeds
    offset per point.
    """
    if writers < 1:
        raise ExperimentError(f"need at least one writer, got {writers}")
    points = [
        _measure(
            UniformEpsilonIntersectingSystem(n, q).describe(),
            UniformEpsilonIntersectingSystem(n, q),
            q,
            writers,
            trials,
            seed + index,
            engine,
        )
        for index, q in enumerate(quorum_sizes)
    ]
    grid = grid_baseline_system(n)
    points.append(
        _measure(
            f"grid baseline (strict, q={2 * GridQuorumSystem(n).side - 1})",
            grid,
            2 * GridQuorumSystem(n).side - 1,
            writers,
            trials,
            seed + len(points),
            engine,
        )
    )
    return points


def render_contention(
    points: Sequence[ContentionPoint],
    n: int,
    writers: int,
    engine: str,
    seed: int,
) -> str:
    """The experiment's report block: one row per system, baseline last."""
    lines = [
        "Contention: epsilon vs quorum size "
        f"({writers} concurrent writers, n={n})",
        f"  engine={engine}  seed={seed}  trials/point={points[0].trials}",
        f"  {'system':34s} {'q':>3s} {'load':>6s} {'exact eps':>10s} "
        f"{'observed miss':>14s}",
    ]
    for point in points:
        lines.append(
            f"  {point.label:34s} {point.quorum_size:3d} {point.load:6.3f} "
            f"{point.epsilon:10.2e} {point.observed_miss:14.4f}"
        )
    lines.append(
        "  (a read misses when its quorum avoids the winning write's quorum; "
        "the strict grid never misses, the probabilistic rows miss ~eps — "
        "bought at load q/n against the grid's ~2/sqrt(n))"
    )
    return "\n".join(lines)


def run_contention(
    n: int = DEFAULT_N,
    writers: int = DEFAULT_WRITERS,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    engine: str = "batch",
    quorum_sizes: Optional[Sequence[int]] = None,
) -> str:
    """Run the contention sweep and render its report (the CLI entry point)."""
    if quorum_sizes is None:
        quorum_sizes = DEFAULT_QUORUM_SIZES
    try:
        points = contention_curve(
            n=n,
            quorum_sizes=quorum_sizes,
            writers=writers,
            trials=trials,
            seed=seed,
            engine=engine,
        )
    except ReproError as error:
        raise ExperimentError(str(error)) from error
    return render_contention(points, n=n, writers=writers, engine=engine, seed=seed)
