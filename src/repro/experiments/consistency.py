"""The protocol-consistency experiment (Theorems 3.2, 4.2 and 5.2).

One declarative :class:`~repro.simulation.scenario.ScenarioSpec` per
theorem — benign ε-intersecting, signed dissemination under silent
Byzantine servers, and threshold masking under colluding forgers — run on
either Monte-Carlo engine and compared against the analytical ``1 - ε``.
The CLI runner (``--experiment consistency --engine batch``) and the
protocol-consistency benchmark both consume :func:`theorem_scenarios`, so
the experiment definition lives in exactly one place.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.protocol.timestamps import Timestamp
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import ConsistencyReport, estimate_read_consistency
from repro.simulation.scenario import ScenarioSpec

#: Defaults mirroring the protocol-consistency benchmark workload.
DEFAULT_N = 64
DEFAULT_B = 8
DEFAULT_EPSILON = 1e-2


def theorem_scenarios(
    n: int = DEFAULT_N, b: int = DEFAULT_B, epsilon: float = DEFAULT_EPSILON
) -> Dict[str, ScenarioSpec]:
    """The three theorem scenarios, keyed ``plain``/``dissemination``/``masking``.

    Each scenario pairs the ε-calibrated construction with the failure model
    its theorem assumes: independent crashes for Theorem 3.2, ``b`` silent
    Byzantine servers for Theorem 4.2 (suppression is the strongest attack
    on self-verifying data), and ``b`` colluding forgers with a maximal
    forged timestamp for Theorem 5.2.
    """
    return {
        "plain": ScenarioSpec(
            system=UniformEpsilonIntersectingSystem.for_epsilon(n, epsilon),
            failure_model=FailureModel.independent_crashes(0.05),
        ),
        "dissemination": ScenarioSpec(
            system=ProbabilisticDisseminationSystem.for_epsilon(n, b, epsilon),
            failure_model=FailureModel.random_byzantine(b),
        ),
        "masking": ScenarioSpec(
            system=ProbabilisticMaskingSystem.for_epsilon(n, b, epsilon),
            failure_model=FailureModel.colluding_forgers(
                b, "FORGED", Timestamp.forged_maximum()
            ),
        ),
    }


def run_consistency_scenarios(
    scenarios: Mapping[str, ScenarioSpec],
    trials: int,
    seed: int = 0,
    engine: str = "batch",
) -> Dict[str, ConsistencyReport]:
    """Run every scenario on the chosen engine (seeds offset per scenario)."""
    return {
        name: estimate_read_consistency(
            spec, trials=trials, seed=seed + index, engine=engine
        )
        for index, (name, spec) in enumerate(sorted(scenarios.items()))
    }


def render_consistency(
    scenarios: Mapping[str, ScenarioSpec],
    reports: Mapping[str, ConsistencyReport],
    engine: str,
    seed: int,
) -> str:
    """Plain-text report comparing measured freshness against analytical 1 - ε."""
    lines = [
        "Protocol consistency (measured vs analytical 1 - epsilon)",
        f"  engine={engine}  seed={seed}",
    ]
    for name in sorted(scenarios):
        spec, report = scenarios[name], reports[name]
        lines.append(
            f"  {name:14s} {spec.describe()}\n"
            f"  {'':14s} trials={report.trials}  "
            f"analytical >= {1 - spec.system.epsilon:.4f}   "
            f"measured fresh = {report.fresh_fraction:.4f}   "
            f"fabricated = {report.fabricated_fraction:.4f}"
        )
    return "\n".join(lines)
