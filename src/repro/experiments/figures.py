"""Generators for Figures 1-3: failure-probability curves.

Each figure of Section 6 plots the crash failure probability ``Fp`` (y-axis)
against the individual server crash probability ``p`` (x-axis):

* **Figure 1** — the ε-intersecting construction for ``n = 100`` and
  ``n = 300`` vs. (left) the lower bound achievable by *any* strict quorum
  system on at most 300 servers, and (right) the strict threshold
  construction with quorums of size ``⌈(n+1)/2⌉``;
* **Figure 2** — the (b,ε)-dissemination construction vs. the strict
  dissemination threshold construction (quorums of size ``⌈(n+b+1)/2⌉``),
  with ``b = √n``;
* **Figure 3** — the (b,ε)-masking construction vs. the strict masking
  threshold construction (quorums of size ``⌈(n+2b+1)/2⌉``), with
  ``b = √n``.

Every probabilistic construction is calibrated to the paper's consistency
target ε ≤ 10⁻³ before its failure probability is evaluated, exactly as the
paper does ("Each of the probabilistic systems depicted in Figs. 1-3
guarantees ε ≤ .001").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.failure_probability import (
    failure_curve_uniform,
    strict_lower_bound_curve,
    threshold_failure_probability,
)
from repro.core.calibration import (
    minimal_quorum_size_for_dissemination,
    minimal_quorum_size_for_epsilon,
    minimal_quorum_size_for_masking,
)
from repro.exceptions import ExperimentError
from repro.quorum.byzantine import dissemination_quorum_size, masking_quorum_size
from repro.types import FailureCurvePoint

#: Universe sizes plotted in Figures 1-3.
FIGURE_UNIVERSE_SIZES: Tuple[int, ...] = (100, 300)

#: Consistency target used to size the probabilistic constructions.
FIGURE_EPSILON: float = 1e-3


def default_probability_grid(points: int = 41) -> List[float]:
    """An evenly spaced grid of crash probabilities over [0, 1]."""
    if points < 2:
        raise ExperimentError(f"the probability grid needs at least 2 points, got {points}")
    return [i / (points - 1) for i in range(points)]


@dataclass
class FigureCurves:
    """All series of one figure, keyed by a descriptive label."""

    title: str
    epsilon: float
    series: Dict[str, List[FailureCurvePoint]] = field(default_factory=dict)

    def labels(self) -> List[str]:
        """The series labels in insertion order."""
        return list(self.series)

    def crossover(self, label_a: str, label_b: str) -> Optional[float]:
        """The smallest grid ``p`` at which series ``a`` falls below series ``b``.

        Used to locate, for example, the crash probability beyond which the
        probabilistic construction is strictly more available than the
        strict threshold baseline.  Returns ``None`` if it never happens on
        the evaluated grid.
        """
        curve_a = self.series[label_a]
        curve_b = self.series[label_b]
        for point_a, point_b in zip(curve_a, curve_b):
            if point_a.failure_probability < point_b.failure_probability - 1e-15:
                return point_a.p
        return None


def _byzantine_threshold_for_figures(n: int) -> int:
    """The ``b = √n`` used in the Figure 2 and Figure 3 settings."""
    return math.isqrt(n)


def figure1_curves(
    sizes: Sequence[int] = FIGURE_UNIVERSE_SIZES,
    epsilon: float = FIGURE_EPSILON,
    ps: Optional[Sequence[float]] = None,
) -> FigureCurves:
    """Figure 1: ε-intersecting construction vs. strict bound and threshold system."""
    grid = list(ps) if ps is not None else default_probability_grid()
    figure = FigureCurves(title="Figure 1: failure probability, benign failures", epsilon=epsilon)
    reference_n = max(sizes)
    figure.series["strict lower bound (n<=%d)" % reference_n] = strict_lower_bound_curve(
        reference_n, grid
    )
    for n in sizes:
        quorum_size = minimal_quorum_size_for_epsilon(n, epsilon)
        figure.series[f"probabilistic R(n={n}, q={quorum_size})"] = failure_curve_uniform(
            n, quorum_size, grid
        )
        threshold_size = math.ceil((n + 1) / 2)
        figure.series[f"strict threshold (n={n}, m={threshold_size})"] = [
            FailureCurvePoint(p, threshold_failure_probability(n, threshold_size, p))
            for p in grid
        ]
    return figure


def figure2_curves(
    sizes: Sequence[int] = FIGURE_UNIVERSE_SIZES,
    epsilon: float = FIGURE_EPSILON,
    ps: Optional[Sequence[float]] = None,
) -> FigureCurves:
    """Figure 2: (b,ε)-dissemination construction vs. strict dissemination threshold."""
    grid = list(ps) if ps is not None else default_probability_grid()
    figure = FigureCurves(
        title="Figure 2: failure probability, dissemination systems (b = sqrt(n))",
        epsilon=epsilon,
    )
    reference_n = max(sizes)
    figure.series["strict lower bound (n<=%d)" % reference_n] = strict_lower_bound_curve(
        reference_n, grid
    )
    for n in sizes:
        b = _byzantine_threshold_for_figures(n)
        quorum_size = minimal_quorum_size_for_dissemination(n, b, epsilon)
        if quorum_size is None:
            raise ExperimentError(
                f"no dissemination construction achieves epsilon={epsilon} for n={n}, b={b}"
            )
        figure.series[
            f"probabilistic dissemination R(n={n}, q={quorum_size}, b={b})"
        ] = failure_curve_uniform(n, quorum_size, grid)
        threshold_size = dissemination_quorum_size(n, b)
        figure.series[f"strict dissemination threshold (n={n}, m={threshold_size})"] = [
            FailureCurvePoint(p, threshold_failure_probability(n, threshold_size, p))
            for p in grid
        ]
    return figure


def figure3_curves(
    sizes: Sequence[int] = FIGURE_UNIVERSE_SIZES,
    epsilon: float = FIGURE_EPSILON,
    ps: Optional[Sequence[float]] = None,
) -> FigureCurves:
    """Figure 3: (b,ε)-masking construction vs. strict masking threshold."""
    grid = list(ps) if ps is not None else default_probability_grid()
    figure = FigureCurves(
        title="Figure 3: failure probability, masking systems (b = sqrt(n))",
        epsilon=epsilon,
    )
    reference_n = max(sizes)
    figure.series["strict lower bound (n<=%d)" % reference_n] = strict_lower_bound_curve(
        reference_n, grid
    )
    for n in sizes:
        b = _byzantine_threshold_for_figures(n)
        quorum_size = minimal_quorum_size_for_masking(n, b, epsilon)
        if quorum_size is None:
            raise ExperimentError(
                f"no masking construction achieves epsilon={epsilon} for n={n}, b={b}"
            )
        figure.series[
            f"probabilistic masking Rk(n={n}, q={quorum_size}, b={b})"
        ] = failure_curve_uniform(n, quorum_size, grid)
        threshold_size = masking_quorum_size(n, b)
        figure.series[f"strict masking threshold (n={n}, m={threshold_size})"] = [
            FailureCurvePoint(p, threshold_failure_probability(n, threshold_size, p))
            for p in grid
        ]
    return figure
