"""Plain-text rendering of the regenerated tables and figures.

The experiment harness and the benchmark suite print their results through
these helpers so that the regenerated rows/series look like the paper's own
tables and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.figures import FigureCurves
from repro.experiments.tables import Table1Entry, Table2Row, Table3Row, Table4Row


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))


def render_table1(entries: Iterable[Table1Entry], n: int, b: int) -> str:
    """Render Table 1 (bounds on load and resilience) for concrete ``(n, b)``."""
    lines = [f"Table 1 — bounds on load and resilience (n={n}, b={b})"]
    header = ("system", "load lower bound", "max resilience")
    widths = (16, 18, 15)
    lines.append(_format_row(header, widths))
    for entry in entries:
        resilience = "n/a" if entry.max_resilience is None else str(entry.max_resilience)
        lines.append(
            _format_row(
                (entry.kind, f"{entry.load_lower_bound:.4f}", resilience), widths
            )
        )
    return "\n".join(lines)


def render_table2(rows: Iterable[Table2Row]) -> str:
    """Render Table 2 (ε-intersecting vs. threshold vs. grid)."""
    lines = ["Table 2 — ε-intersecting vs. strict threshold and grid (ε ≤ 1e-3)"]
    header = (
        "n", "ell", "quorum", "fault tol", "epsilon",
        "thr quorum", "thr ft", "grid quorum", "grid ft", "paper ell", "paper q",
    )
    widths = (5, 6, 7, 10, 10, 11, 7, 12, 8, 10, 8)
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(
            _format_row(
                (
                    row.n,
                    f"{row.ell:.2f}",
                    row.quorum_size,
                    row.fault_tolerance,
                    f"{row.epsilon:.1e}",
                    row.threshold_quorum_size,
                    row.threshold_fault_tolerance,
                    row.grid_quorum_size,
                    row.grid_fault_tolerance,
                    "-" if row.paper_ell is None else f"{row.paper_ell:.2f}",
                    "-" if row.paper_quorum_size is None else row.paper_quorum_size,
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_table3(rows: Iterable[Table3Row]) -> str:
    """Render Table 3 ((b,ε)-dissemination vs. strict dissemination systems)."""
    lines = ["Table 3 — (b,ε)-dissemination vs. strict dissemination systems (ε ≤ 1e-3)"]
    header = (
        "n", "b", "ell", "quorum", "fault tol", "epsilon",
        "thr quorum", "thr ft", "grid quorum", "grid ft", "paper q",
    )
    widths = (5, 4, 6, 7, 10, 10, 11, 7, 12, 8, 8)
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(
            _format_row(
                (
                    row.n,
                    row.b,
                    f"{row.ell:.2f}",
                    row.quorum_size,
                    row.fault_tolerance,
                    f"{row.epsilon:.1e}",
                    row.threshold_quorum_size,
                    row.threshold_fault_tolerance,
                    row.grid_quorum_size,
                    row.grid_fault_tolerance,
                    "-" if row.paper_quorum_size is None else row.paper_quorum_size,
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_table4(rows: Iterable[Table4Row]) -> str:
    """Render Table 4 ((b,ε)-masking vs. strict masking systems)."""
    lines = ["Table 4 — (b,ε)-masking vs. strict masking systems (ε ≤ 1e-3)"]
    header = (
        "n", "b", "ell", "quorum", "k", "fault tol", "epsilon",
        "thr quorum", "thr ft", "grid quorum", "grid ft", "paper q",
    )
    widths = (5, 4, 6, 7, 4, 10, 10, 11, 7, 12, 8, 8)
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(
            _format_row(
                (
                    row.n,
                    row.b,
                    f"{row.ell:.2f}",
                    row.quorum_size,
                    row.read_threshold,
                    row.fault_tolerance,
                    f"{row.epsilon:.1e}",
                    row.threshold_quorum_size,
                    row.threshold_fault_tolerance,
                    row.grid_quorum_size,
                    row.grid_fault_tolerance,
                    "-" if row.paper_quorum_size is None else row.paper_quorum_size,
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_figure(figure: FigureCurves, sample_every: int = 4) -> str:
    """Render a figure's curves as a table of ``p`` vs. per-series ``Fp`` values.

    ``sample_every`` thins the probability grid so that the printed table
    stays readable; pass 1 to print every evaluated point.
    """
    labels = figure.labels()
    if not labels:
        return figure.title + "\n(no series)"
    lines = [figure.title, f"(all probabilistic constructions sized for ε ≤ {figure.epsilon:g})"]
    widths = [6] + [max(14, len(label[:28])) for label in labels]
    header = ["p"] + [label[:28] for label in labels]
    lines.append(_format_row(header, widths))
    grid_length = len(figure.series[labels[0]])
    for index in range(0, grid_length, max(1, sample_every)):
        cells: List[str] = [f"{figure.series[labels[0]][index].p:.2f}"]
        for label in labels:
            cells.append(f"{figure.series[label][index].failure_probability:.3e}")
        lines.append(_format_row(cells, widths))
    return "\n".join(lines)
