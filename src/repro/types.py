"""Shared type aliases and small value objects used across the library.

The library models a *universe* of ``n`` servers as the integers
``0 .. n - 1``.  A *quorum* is a frozen set of server identifiers.  These
aliases exist so that module signatures read like the paper ("a quorum",
"a universe") rather than like bare container types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

#: A server identifier.  Servers are numbered ``0 .. n - 1``.
ServerId = int

#: A quorum: an immutable set of server identifiers.
Quorum = FrozenSet[ServerId]

#: A collection of quorums (the set system "Q" of the paper).
QuorumCollection = Tuple[Quorum, ...]


def make_quorum(servers: Iterable[ServerId]) -> Quorum:
    """Normalise an iterable of server ids into a :data:`Quorum`."""
    return frozenset(int(s) for s in servers)


def universe(n: int) -> Quorum:
    """Return the full universe ``{0, ..., n-1}`` as a frozen set."""
    if n < 1:
        raise ValueError(f"universe size must be positive, got {n}")
    return frozenset(range(n))


@dataclass(frozen=True)
class SystemProfile:
    """Summary of a quorum system's quality measures.

    This mirrors the three traditional measures of Section 2 of the paper
    (load, fault tolerance, failure probability) plus the probabilistic
    intersection guarantee ``epsilon`` where applicable.

    Attributes
    ----------
    name:
        Human readable name of the construction (e.g. ``"R(100, 22)"``).
    n:
        Universe size.
    quorum_size:
        Size of a typical (for symmetric systems, every) quorum.
    load:
        The load of the system under its access strategy.
    fault_tolerance:
        ``A(Q)`` — crash fault tolerance (number of crash failures that can
        be survived is ``fault_tolerance - 1``).
    epsilon:
        Probability that the relevant intersection property fails for a pair
        of quorums chosen according to the access strategy; ``0.0`` for
        strict systems.
    byzantine_threshold:
        Number of Byzantine failures masked (``0`` for plain systems).
    """

    name: str
    n: int
    quorum_size: int
    load: float
    fault_tolerance: int
    epsilon: float = 0.0
    byzantine_threshold: int = 0

    def as_row(self) -> Tuple[str, int, int, float, int, float, int]:
        """Return the profile as a flat tuple convenient for table rendering."""
        return (
            self.name,
            self.n,
            self.quorum_size,
            self.load,
            self.fault_tolerance,
            self.epsilon,
            self.byzantine_threshold,
        )


@dataclass(frozen=True)
class FailureCurvePoint:
    """One point of a failure-probability curve (Figures 1-3 of the paper)."""

    p: float
    failure_probability: float


FailureCurve = Sequence[FailureCurvePoint]
