"""Tests for the shared RNG routing (repro.rngs)."""

from __future__ import annotations

import pytest

from repro.rngs import chunked_substreams, fresh_rng, seed_sequential


@pytest.fixture(autouse=True)
def _reset_sequential_root():
    yield
    seed_sequential(None)


class TestFreshRng:
    def test_explicit_seed_wins(self):
        assert fresh_rng(5).random() == fresh_rng(5).random()

    def test_sequential_root_makes_streams_reproducible(self):
        seed_sequential(123)
        first = [fresh_rng().random() for _ in range(3)]
        seed_sequential(123)
        second = [fresh_rng().random() for _ in range(3)]
        assert first == second
        # Distinct streams from one root are not identical to each other.
        assert len(set(first)) == 3

    def test_unseeded_fallback_is_os_entropy(self):
        seed_sequential(None)
        # Vanishingly unlikely to collide if genuinely independent.
        assert fresh_rng().random() != fresh_rng().random()

    def test_protocol_stack_draws_through_the_root(self):
        # A register built without an explicit rng must be reproducible once
        # the sequential root is installed — the single-seed contract.
        from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
        from repro.protocol.variable import ProbabilisticRegister
        from repro.simulation.cluster import Cluster

        system = UniformEpsilonIntersectingSystem(20, 5)
        quorums = []
        for _ in range(2):
            seed_sequential(7)
            register = ProbabilisticRegister(system, Cluster(20))
            quorums.append([register.write("v").quorum for _ in range(3)])
        assert quorums[0] == quorums[1]


class TestChunkedSubstreams:
    def test_covers_total_and_validates(self):
        sizes = [size for _, size in chunked_substreams(0, 10, 4)]
        assert sizes == [4, 4, 2]
        with pytest.raises(ValueError):
            list(chunked_substreams(0, -1, 4))
        with pytest.raises(ValueError):
            list(chunked_substreams(0, 10, 0))
