"""Tests for the mobile-device location service."""

from __future__ import annotations

import random

import pytest

from repro.apps.location import LocationService
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan


def make_service(n=50, quorum_size=None, epsilon=1e-3, gossip_fanout=0, plan=None, seed=0):
    if quorum_size is None:
        system = UniformEpsilonIntersectingSystem.for_epsilon(n, epsilon)
    else:
        system = UniformEpsilonIntersectingSystem(n, quorum_size)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    return LocationService(system, cluster, gossip_fanout=gossip_fanout, rng=random.Random(seed))


class TestUpdatesAndQueries:
    def test_lookup_after_single_update(self):
        service = make_service()
        service.update_location("phone-1", "cell-A")
        answer = service.locate("phone-1")
        assert answer.found
        assert answer.cell == "cell-A"
        assert answer.is_current
        assert answer.forwarding_hops == 0

    def test_lookup_tracks_movement(self):
        service = make_service()
        for cell in ("A", "B", "C"):
            service.update_location("phone-1", cell)
        assert service.current_cell("phone-1") == "C"
        answer = service.locate("phone-1")
        assert answer.cell == "C"

    def test_devices_are_independent(self):
        service = make_service()
        service.update_location("phone-1", "north")
        service.update_location("phone-2", "south")
        assert service.locate("phone-1").cell == "north"
        assert service.locate("phone-2").cell == "south"

    def test_unknown_device_raises(self):
        service = make_service()
        with pytest.raises(ProtocolError):
            service.locate("ghost")

    def test_empty_names_rejected(self):
        service = make_service()
        with pytest.raises(ProtocolError):
            service.update_location("", "cell")
        with pytest.raises(ProtocolError):
            service.update_location("phone", "")

    def test_mismatched_cluster_rejected(self):
        system = UniformEpsilonIntersectingSystem(25, 10)
        with pytest.raises(ConfigurationError):
            LocationService(system, Cluster(30))


class TestStalenessAndForwarding:
    def test_stale_answers_are_forwarded(self):
        # A loose construction produces stale reads; the service must still
        # find the device by chasing forwarding pointers, never losing it.
        service = make_service(n=30, quorum_size=4, seed=2)
        moves = ["cell-%d" % i for i in range(6)]
        for cell in moves:
            service.update_location("phone-1", cell)
        answers = [service.locate("phone-1") for _ in range(40)]
        found = [a for a in answers if a.found]
        # Small quorums may occasionally miss every store that saw an update
        # ("no information" answers), but most queries find the device and are
        # forwarded to its current cell.
        assert len(found) >= len(answers) // 2
        assert all(a.cell == "cell-5" for a in found)
        assert any(a.forwarding_hops > 0 for a in found)
        assert service.stale_answer_rate > 0.0

    def test_unanswered_queries_only_under_massive_crashes(self):
        plan = FailurePlan(crashed=frozenset(range(25)))  # half the stores down
        service = make_service(n=50, quorum_size=10, plan=plan, seed=3)
        service.update_location("phone-1", "somewhere")
        for _ in range(20):
            service.locate("phone-1")
        # Rates are well-defined and bounded.
        assert 0.0 <= service.unanswered_rate <= 1.0
        assert 0.0 <= service.stale_answer_rate <= 1.0

    def test_gossip_reduces_staleness(self):
        def run(gossip_rounds):
            service = make_service(n=30, quorum_size=4, gossip_fanout=3, seed=4)
            stale = 0
            for step in range(15):
                service.update_location("phone-1", f"cell-{step}")
                if gossip_rounds:
                    service.run_gossip(gossip_rounds)
                if not service.locate("phone-1").is_current:
                    stale += 1
            return stale

        assert run(gossip_rounds=4) <= run(gossip_rounds=0)

    def test_gossip_requires_fanout(self):
        service = make_service()
        with pytest.raises(ConfigurationError):
            service.run_gossip()

    def test_query_statistics_accumulate(self):
        service = make_service()
        service.update_location("phone-1", "A")
        for _ in range(5):
            service.locate("phone-1")
        assert service.queries_answered == 5
