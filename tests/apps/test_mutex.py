"""Tests for the quorum-backed distributed lock service."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.apps.mutex import (
    AsyncQuorumMutex,
    LockLoadSpec,
    jain_fairness,
    lock_variable,
    mutex_for,
    run_lock_load,
)
from repro.exceptions import ConfigurationError, ProtocolError
from repro.experiments.serve import serve_scenario
from repro.service.load import FaultInjectionSpec
from repro.service.sharding import ShardedDeployment
from repro.simulation.scenario import ScenarioSpec, WorkloadSpec
from repro.simulation.failures import FailureModel
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem

SCENARIO = ScenarioSpec(
    system=UniformEpsilonIntersectingSystem.for_epsilon(36, 1e-4),
    failure_model=FailureModel.none(),
    workload=WorkloadSpec(writes=1),
)


def deploy_mutexes(scenario, clients, seed=0, verify_rounds=2):
    """An in-process deployment plus one mutex handle per client id."""
    rng = random.Random(seed)
    deployment = ShardedDeployment(scenario, shards=1, transport="inproc", rng=rng)
    mutexes = [
        mutex_for(
            scenario,
            deployment.client_for_shard(
                0, rng=random.Random(rng.randrange(2**63)), deadline=0.05
            ),
            name="L",
            client_id=client_id,
            verify_rounds=verify_rounds,
            rng=random.Random(rng.randrange(2**63)),
        )
        for client_id in range(clients)
    ]
    return deployment, mutexes


def run(coro):
    return asyncio.run(coro)


class TestMutexBasics:
    def test_acquire_hold_release_cycle(self):
        async def scenario():
            _, (mutex,) = deploy_mutexes(SCENARIO, 1)
            attempt = await mutex.request()
            assert attempt.granted
            assert attempt.timestamp is not None
            assert mutex.held
            assert await mutex.holder() == 0
            await mutex.release()
            assert not mutex.held
            assert await mutex.holder() is None

        run(scenario())

    def test_second_client_sees_the_holder_and_waits(self):
        async def scenario():
            _, (first, second) = deploy_mutexes(SCENARIO, 2)
            assert (await first.request()).granted
            attempt = await second.request()
            assert not attempt.granted
            assert attempt.holder_seen == 0
            await first.release()
            assert (await second.request()).granted

        run(scenario())

    def test_reacquire_while_holding_raises(self):
        async def scenario():
            _, (mutex,) = deploy_mutexes(SCENARIO, 1)
            await mutex.request()
            with pytest.raises(ProtocolError):
                await mutex.request()

        run(scenario())

    def test_release_without_holding_raises(self):
        async def scenario():
            _, (mutex,) = deploy_mutexes(SCENARIO, 1)
            with pytest.raises(ProtocolError):
                await mutex.release()

        run(scenario())

    def test_acquire_gives_up_after_max_requests(self):
        async def scenario():
            _, (first, second) = deploy_mutexes(SCENARIO, 2)
            await first.request()
            with pytest.raises(ProtocolError, match="gave up"):
                await second.acquire(retry_interval=0.0001, max_requests=3)

        run(scenario())

    def test_validation(self):
        async def scenario():
            deployment, (mutex,) = deploy_mutexes(SCENARIO, 1)
            with pytest.raises(ProtocolError):
                AsyncQuorumMutex(mutex.register, "L", client_id=-1)
            with pytest.raises(ConfigurationError):
                AsyncQuorumMutex(mutex.register, "", client_id=0)
            with pytest.raises(ConfigurationError):
                AsyncQuorumMutex(mutex.register, "L", client_id=0, verify_rounds=-1)

        run(scenario())

    def test_lock_variable_namespacing(self):
        assert lock_variable("a") == "quorum-lock:a"
        _, (mutex,) = deploy_mutexes(SCENARIO, 1)
        assert mutex.register.name == "quorum-lock:L"


class TestReleaseFencing:
    def test_backed_off_record_does_not_block_others(self):
        # A contender that conceded annuls its own record; a later client
        # must then be able to acquire even though the backed-off held
        # record still sits on some replicas.
        async def scenario():
            _, mutexes = deploy_mutexes(SCENARIO, 3, seed=3)
            first, second, third = mutexes
            # Force a back-off: write both held records, then have the
            # second verify (it sees the first's record and concedes).
            await first.request()
            attempt = await second.request()
            assert not attempt.granted
            await first.release()
            # The second's back-off (if its write raced in) was annulled,
            # so the third client acquires cleanly.
            grant = await third.acquire(retry_interval=0.0001, max_requests=50)
            assert grant.granted

        run(scenario())

    def test_release_is_per_holder(self):
        # One client's release must not fence another client's live grant.
        async def scenario():
            _, (first, second) = deploy_mutexes(SCENARIO, 2, seed=4)
            await first.request()
            await first.release()
            assert (await second.request()).granted
            # first knows its own release; second's newer grant survives it.
            assert await first.holder() == 1

        run(scenario())


class TestLockLoadHarness:
    def base_spec(self, **overrides):
        defaults = dict(
            scenario=serve_scenario(n=36, quorum_size=18, b=2, byzantine=True),
            clients=4,
            acquisitions_per_client=2,
            locks=2,
            deadline=0.02,
            seed=11,
            fault_injection=FaultInjectionSpec(crash_count=2, interval=0.002),
        )
        defaults.update(overrides)
        return LockLoadSpec(**defaults)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.base_spec(clients=0)
        with pytest.raises(ConfigurationError):
            self.base_spec(acquisitions_per_client=0)
        with pytest.raises(ConfigurationError):
            self.base_spec(locks=0)
        with pytest.raises(ConfigurationError):
            self.base_spec(hold_time=-0.1)
        with pytest.raises(ConfigurationError):
            self.base_spec(retry_interval=0.0)
        with pytest.raises(ConfigurationError):
            self.base_spec(verify_rounds=-1)
        with pytest.raises(ConfigurationError):
            self.base_spec(transport="pigeon")
        with pytest.raises(ConfigurationError):
            self.base_spec(transport="tcp", deadline=None)
        with pytest.raises(ConfigurationError):
            self.base_spec(scenario="not-a-scenario")

    def test_contended_run_grants_everyone_without_double_grants(self):
        report = run_lock_load(self.base_spec())
        assert report.grants == 8
        assert report.releases == 8
        assert report.double_grants == 0
        assert report.give_ups == 0
        assert report.starved_clients == 0
        assert report.fairness == pytest.approx(1.0)
        assert len(report.wait_times) == report.grants
        rendered = report.render()
        assert "double grants" in rendered
        assert "Jain" in rendered

    def test_single_hot_lock_stays_safe_and_fair(self):
        report = run_lock_load(
            self.base_spec(clients=6, acquisitions_per_client=3, locks=1)
        )
        assert report.grants == 18
        assert report.double_grants == 0
        assert report.fairness > 0.9

    def test_jain_fairness(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([10, 0, 0]) == pytest.approx(1.0 / 3.0)
