"""Tests for the voter-ID locking application."""

from __future__ import annotations

import random

import pytest

from repro.apps.voting import VotingService
from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan


def plain_service(n=50, epsilon=1e-3, seed=0, plan=None):
    system = UniformEpsilonIntersectingSystem.for_epsilon(n, epsilon)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    return VotingService(system, cluster, rng=random.Random(seed))


class TestBasicVoting:
    def test_first_vote_accepted(self):
        service = plain_service()
        outcome = service.cast_vote("voter-1", station_id=3)
        assert outcome.accepted
        assert not outcome.duplicate_detected
        assert outcome.write_quorum is not None
        assert service.has_voted("voter-1")

    def test_distinct_voters_do_not_interfere(self):
        service = plain_service()
        for index in range(20):
            assert service.cast_vote(f"voter-{index}", station_id=index % 5).accepted
        audit = service.audit()
        assert audit.ballots_accepted == 20
        assert audit.distinct_voters_accepted == 20
        assert audit.duplicates_admitted == 0

    def test_duplicate_usually_rejected(self):
        service = plain_service()
        service.cast_vote("repeat-offender", station_id=0)
        second = service.cast_vote("repeat-offender", station_id=7)
        assert not second.accepted
        assert second.duplicate_detected
        audit = service.audit()
        assert audit.duplicates_rejected == 1
        assert audit.repeat_admission_rate == 0.0

    def test_many_repeat_attempts_are_virtually_certain_to_be_caught(self):
        # The paper's argument: each repeat attempt slips through with
        # probability <= epsilon, so r attempts all slipping through has
        # probability epsilon^r.  Empirically none should slip with eps<=1e-3.
        service = plain_service()
        service.cast_vote("offender", station_id=0)
        accepted_repeats = sum(
            1 for attempt in range(30) if service.cast_vote("offender", attempt % 10).accepted
        )
        assert accepted_repeats == 0
        assert not service.double_voters()

    def test_empty_voter_id_rejected(self):
        service = plain_service()
        with pytest.raises(ProtocolError):
            service.cast_vote("", station_id=0)

    def test_mismatched_cluster_size_rejected(self):
        system = UniformEpsilonIntersectingSystem(25, 10)
        with pytest.raises(ConfigurationError):
            VotingService(system, Cluster(30))

    def test_loose_epsilon_occasionally_admits_duplicates(self):
        # With a deliberately terrible construction (tiny quorums) duplicates
        # do slip through, demonstrating that the guarantee is really the
        # quorum system's epsilon and not something else.
        system = UniformEpsilonIntersectingSystem(50, 3)  # epsilon ~ 0.83
        cluster = Cluster(50, seed=1)
        service = VotingService(system, cluster, rng=random.Random(1))
        service.cast_vote("offender", 0)
        repeats = [service.cast_vote("offender", s) for s in range(20)]
        assert any(outcome.accepted for outcome in repeats)
        assert service.audit().duplicates_admitted >= 1
        assert "offender" in service.double_voters()


class TestByzantineVoting:
    def test_dissemination_mode_with_tampered_stations(self):
        n, b = 60, 12
        system = ProbabilisticDisseminationSystem.for_epsilon(n, b, 1e-2)
        scheme = SignatureScheme(b"election-authority")
        plan = FailurePlan.colluding_forgers(
            n, b, {"station": 999, "voter": "nobody"}, Timestamp.forged_maximum(),
            rng=random.Random(2),
        )
        cluster = Cluster(n, failure_plan=plan, seed=2)
        service = VotingService(system, cluster, signatures=scheme, rng=random.Random(2))
        # Forged lock records are unverifiable, so they cannot block honest voters.
        for index in range(15):
            assert service.cast_vote(f"voter-{index}", station_id=index).accepted
        # Duplicates are still caught.
        assert not service.cast_vote("voter-3", station_id=9).accepted

    def test_masking_mode_uses_vote_threshold(self):
        n, b = 60, 6
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, 1e-2)
        plan = FailurePlan.colluding_forgers(
            n, b, {"station": 999, "voter": "nobody"}, Timestamp.forged_maximum(),
            rng=random.Random(3),
        )
        cluster = Cluster(n, failure_plan=plan, seed=3)
        service = VotingService(system, cluster, rng=random.Random(3))
        assert service.read_threshold == system.read_threshold
        for index in range(10):
            assert service.cast_vote(f"voter-{index}", station_id=index).accepted
        rejected = service.cast_vote("voter-0", station_id=55)
        assert not rejected.accepted

    def test_audit_counts_presented_ballots(self):
        service = plain_service()
        service.cast_vote("a", 0)
        service.cast_vote("b", 1)
        service.cast_vote("a", 2)
        audit = service.audit()
        assert audit.ballots_presented == 3
        assert audit.ballots_accepted == 2
        assert audit.duplicates_rejected == 1
