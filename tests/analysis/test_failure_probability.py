"""Tests for the crash failure probability computations."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.failure_probability import (
    crash_failure_probability_uniform,
    failure_curve_uniform,
    grid_failure_probability,
    majority_failure_probability,
    monte_carlo_failure_probability,
    singleton_failure_probability,
    strict_lower_bound,
    strict_lower_bound_curve,
    threshold_failure_probability,
)


class TestUniformFailureProbability:
    def test_boundary_probabilities(self):
        assert crash_failure_probability_uniform(100, 23, 0.0) == 0.0
        assert crash_failure_probability_uniform(100, 23, 1.0) == 1.0

    def test_single_server_quorum(self):
        # With q=1 the system fails only if every server crashes.
        assert crash_failure_probability_uniform(3, 1, 0.5) == pytest.approx(0.125)

    def test_full_universe_quorum(self):
        # With q=n any crash disables the single quorum.
        n, p = 10, 0.2
        assert crash_failure_probability_uniform(n, n, p) == pytest.approx(
            1.0 - (1.0 - p) ** n
        )

    def test_monotone_in_p(self):
        values = [crash_failure_probability_uniform(50, 12, p / 20) for p in range(21)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_monotone_in_quorum_size(self):
        # Larger quorums need more live servers, so they fail more easily.
        values = [crash_failure_probability_uniform(50, q, 0.4) for q in range(1, 50, 5)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_matches_monte_carlo(self):
        n, q, p = 30, 8, 0.6
        exact = crash_failure_probability_uniform(n, q, p)
        rng = random.Random(17)
        trials = 20_000
        failures = sum(
            1
            for _ in range(trials)
            if sum(1 for _ in range(n) if rng.random() < p) > n - q
        )
        assert failures / trials == pytest.approx(exact, abs=0.012)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            crash_failure_probability_uniform(0, 1, 0.5)
        with pytest.raises(ValueError):
            crash_failure_probability_uniform(10, 0, 0.5)
        with pytest.raises(ValueError):
            crash_failure_probability_uniform(10, 3, 1.5)

    @given(
        st.integers(min_value=1, max_value=80),
        st.data(),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_in_unit_interval(self, n, data, p):
        q = data.draw(st.integers(min_value=1, max_value=n))
        value = crash_failure_probability_uniform(n, q, p)
        assert 0.0 <= value <= 1.0


class TestThresholdAndReferenceCurves:
    def test_threshold_equals_uniform(self):
        assert threshold_failure_probability(100, 51, 0.3) == pytest.approx(
            crash_failure_probability_uniform(100, 51, 0.3)
        )

    def test_majority_quorum_size(self):
        # Majority uses quorums of ceil((n+1)/2).
        assert majority_failure_probability(5, 0.5) == pytest.approx(
            threshold_failure_probability(5, 3, 0.5)
        )
        assert majority_failure_probability(6, 0.5) == pytest.approx(
            threshold_failure_probability(6, 4, 0.5)
        )

    def test_singleton(self):
        assert singleton_failure_probability(0.37) == 0.37
        with pytest.raises(ValueError):
            singleton_failure_probability(-0.1)

    def test_lower_bound_is_min_of_majority_and_singleton(self):
        for p in (0.1, 0.4, 0.5, 0.7, 0.95):
            expected = min(majority_failure_probability(300, p), p)
            assert strict_lower_bound(300, p) == pytest.approx(expected)

    def test_lower_bound_behaviour_around_half(self):
        # Below 1/2 the majority wins (tiny Fp); above 1/2 the singleton (Fp = p).
        assert strict_lower_bound(300, 0.3) < 1e-6
        assert strict_lower_bound(300, 0.8) == pytest.approx(0.8)

    def test_curves_have_requested_grid(self):
        ps = [0.0, 0.25, 0.5, 0.75, 1.0]
        curve = strict_lower_bound_curve(100, ps)
        assert [point.p for point in curve] == ps
        curve2 = failure_curve_uniform(100, 23, ps)
        assert [point.p for point in curve2] == ps
        assert curve2[0].failure_probability == 0.0
        assert curve2[-1].failure_probability == 1.0


class TestGridFailureProbability:
    def test_boundaries(self):
        assert grid_failure_probability(5, 5, 0.0) == 0.0
        assert grid_failure_probability(5, 5, 1.0) == 1.0

    def test_single_cell_grid(self):
        assert grid_failure_probability(1, 1, 0.3) == pytest.approx(0.3)

    def test_one_row_grid(self):
        # A 1xc grid needs the full row alive plus one cell: i.e. all c cells alive.
        c, p = 4, 0.2
        assert grid_failure_probability(1, c, p) == pytest.approx(1 - (1 - p) ** c)

    def test_matches_monte_carlo(self):
        rows = cols = 5
        p = 0.3
        exact = grid_failure_probability(rows, cols, p)
        rng = random.Random(23)
        trials = 20_000
        failures = 0
        for _ in range(trials):
            alive = [[rng.random() >= p for _ in range(cols)] for _ in range(rows)]
            has_row = any(all(row) for row in alive)
            has_col = any(all(alive[r][c] for r in range(rows)) for c in range(cols))
            if not (has_row and has_col):
                failures += 1
        assert failures / trials == pytest.approx(exact, abs=0.012)

    def test_monotone_in_p(self):
        values = [grid_failure_probability(6, 6, p / 10) for p in range(11)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_worse_than_majority_for_moderate_p(self):
        # Grids trade availability for load: for p = 0.3 and n = 36 the grid
        # fails far more often than the majority system.
        assert grid_failure_probability(6, 6, 0.3) > majority_failure_probability(36, 0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_failure_probability(0, 5, 0.5)
        with pytest.raises(ValueError):
            grid_failure_probability(5, 5, -0.1)


class TestMonteCarloFailureProbability:
    def test_agrees_with_exact_threshold(self):
        quorums = [frozenset(combo) for combo in _all_subsets(6, 4)]
        estimate = monte_carlo_failure_probability(quorums, 6, 0.5, trials=20_000, seed=1)
        exact = threshold_failure_probability(6, 4, 0.5)
        assert estimate == pytest.approx(exact, abs=0.015)

    def test_validations(self):
        with pytest.raises(ValueError):
            monte_carlo_failure_probability([], 5, 0.5)
        with pytest.raises(ValueError):
            monte_carlo_failure_probability([frozenset({0})], 5, 0.5, trials=0)
        with pytest.raises(ValueError):
            monte_carlo_failure_probability([frozenset({0})], 0, 0.5)


def _all_subsets(n, size):
    import itertools

    return itertools.combinations(range(n), size)
