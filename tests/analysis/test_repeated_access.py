"""Tests for the repeated-access (compounded epsilon) analysis."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.repeated_access import (
    all_attempts_miss_probability,
    at_least_one_hit_probability,
    attempts_needed_for_confidence,
    epsilon_budget_per_operation,
    expected_staleness,
    staleness_distribution,
    union_bound_over_operations,
)
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.cluster import Cluster


class TestCompoundedMissProbability:
    def test_basic_values(self):
        assert all_attempts_miss_probability(0.1, 0) == 1.0
        assert all_attempts_miss_probability(0.1, 1) == pytest.approx(0.1)
        assert all_attempts_miss_probability(0.1, 3) == pytest.approx(1e-3)
        assert at_least_one_hit_probability(0.1, 3) == pytest.approx(0.999)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            all_attempts_miss_probability(1.0, 2)
        with pytest.raises(ConfigurationError):
            all_attempts_miss_probability(0.1, -1)

    def test_attempts_needed(self):
        assert attempts_needed_for_confidence(0.0, 0.999) == 1
        assert attempts_needed_for_confidence(0.1, 0.999) == 3
        assert attempts_needed_for_confidence(0.5, 0.99) == 7
        with pytest.raises(ConfigurationError):
            attempts_needed_for_confidence(0.1, 1.0)

    def test_attempts_needed_is_consistent(self):
        for epsilon in (0.05, 0.2, 0.6):
            for confidence in (0.9, 0.99, 0.9999):
                r = attempts_needed_for_confidence(epsilon, confidence)
                assert at_least_one_hit_probability(epsilon, r) >= confidence
                if r > 1:
                    assert at_least_one_hit_probability(epsilon, r - 1) < confidence

    def test_matches_simulated_repeat_attempts(self):
        # The voting scenario: once a value is written, how often do r
        # independent reads all miss it?  Compare epsilon^r with simulation.
        system = UniformEpsilonIntersectingSystem(25, 5)
        attempts = 2
        predicted = all_attempts_miss_probability(system.epsilon, attempts)
        all_missed = 0
        trials = 400
        for seed in range(trials):
            cluster = Cluster(25, seed=seed)
            register = ProbabilisticRegister(system, cluster, rng=random.Random(seed))
            write = register.write("v")
            if all(register.read().timestamp != write.timestamp for _ in range(attempts)):
                all_missed += 1
        assert all_missed / trials == pytest.approx(predicted, abs=0.06)

    @given(st.floats(min_value=0.0, max_value=0.99), st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_complementary(self, epsilon, attempts):
        total = all_attempts_miss_probability(epsilon, attempts) + at_least_one_hit_probability(
            epsilon, attempts
        )
        assert total == pytest.approx(1.0)


class TestStaleness:
    def test_distribution_sums_to_one(self):
        distribution = staleness_distribution(0.2, 5)
        assert len(distribution) == 6
        assert sum(distribution) == pytest.approx(1.0)
        # Geometric decay.
        assert all(a >= b for a, b in zip(distribution[:-1], distribution[1:-1]))

    def test_zero_epsilon_is_always_fresh(self):
        distribution = staleness_distribution(0.0, 4)
        assert distribution[0] == 1.0
        assert sum(distribution[1:]) == 0.0
        assert expected_staleness(0.0, 4) == 0.0

    def test_expected_staleness_grows_with_epsilon(self):
        assert expected_staleness(0.4, 6) > expected_staleness(0.1, 6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            staleness_distribution(0.1, 0)


class TestBudgets:
    def test_union_bound(self):
        assert union_bound_over_operations(1e-4, 100) == pytest.approx(1e-2)
        assert union_bound_over_operations(0.5, 10) == 1.0
        assert union_bound_over_operations(0.1, 0) == 0.0

    def test_budget_per_operation_round_trip(self):
        per_operation = epsilon_budget_per_operation(0.01, 500)
        assert per_operation == pytest.approx(2e-5)
        assert union_bound_over_operations(per_operation, 500) == pytest.approx(0.01)

    def test_budget_drives_calibration(self):
        # An end-to-end budget translates into a concrete quorum size.
        from repro.core.calibration import minimal_quorum_size_for_epsilon

        per_operation = epsilon_budget_per_operation(0.01, 1000)
        q = minimal_quorum_size_for_epsilon(400, per_operation)
        loose_q = minimal_quorum_size_for_epsilon(400, 1e-3)
        assert q > loose_q  # a tighter budget needs bigger quorums

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            epsilon_budget_per_operation(0.0, 10)
        with pytest.raises(ConfigurationError):
            epsilon_budget_per_operation(0.5, 0)
        with pytest.raises(ConfigurationError):
            union_bound_over_operations(0.1, -1)
