"""Tests for the exact combinatorial primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.combinatorics import (
    binomial,
    binomial_cdf,
    binomial_pmf,
    binomial_sf,
    falling_factorial_ratio,
    hypergeometric_cdf,
    hypergeometric_mean,
    hypergeometric_pmf,
    hypergeometric_pmf_vector,
    hypergeometric_sf,
    hypergeometric_support,
    hypergeometric_variance,
    log_binomial,
    log_factorial,
    log_sum_exp,
    proposition_3_14_bound,
)


class TestLogFactorial:
    def test_small_values(self):
        assert log_factorial(0) == pytest.approx(0.0)
        assert log_factorial(1) == pytest.approx(0.0)
        assert log_factorial(5) == pytest.approx(math.log(120))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            log_factorial(-1)

    @given(st.integers(min_value=0, max_value=300))
    def test_matches_math_factorial(self, n):
        assert log_factorial(n) == pytest.approx(math.log(math.factorial(n)), rel=1e-12)


class TestLogBinomial:
    def test_matches_comb(self):
        for n in (0, 1, 5, 20, 60):
            for k in range(0, n + 1):
                assert math.exp(log_binomial(n, k)) == pytest.approx(
                    math.comb(n, k), rel=1e-9
                )

    def test_out_of_range_is_minus_inf(self):
        assert log_binomial(5, -1) == float("-inf")
        assert log_binomial(5, 6) == float("-inf")

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            log_binomial(-2, 1)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200))
    def test_symmetry(self, n, k):
        if k <= n:
            assert log_binomial(n, k) == pytest.approx(log_binomial(n, n - k), abs=1e-9)


class TestBinomialHelper:
    def test_matches_math_comb(self):
        assert binomial(10, 3) == math.comb(10, 3)
        assert binomial(10, 11) == 0
        assert binomial(10, -1) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            binomial(-1, 0)


class TestLogSumExp:
    def test_empty_is_minus_inf(self):
        assert log_sum_exp([]) == float("-inf")

    def test_all_minus_inf(self):
        assert log_sum_exp([float("-inf"), float("-inf")]) == float("-inf")

    def test_matches_direct_sum(self):
        values = [math.log(0.1), math.log(0.2), math.log(0.3)]
        assert math.exp(log_sum_exp(values)) == pytest.approx(0.6)


class TestBinomialDistribution:
    def test_pmf_sums_to_one(self):
        total = sum(binomial_pmf(k, 20, 0.3) for k in range(21))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_degenerate_p_zero(self):
        assert binomial_pmf(0, 10, 0.0) == 1.0
        assert binomial_pmf(1, 10, 0.0) == 0.0
        assert binomial_cdf(0, 10, 0.0) == 1.0

    def test_degenerate_p_one(self):
        assert binomial_pmf(10, 10, 1.0) == 1.0
        assert binomial_sf(9, 10, 1.0) == 1.0
        assert binomial_sf(10, 10, 1.0) == 0.0

    def test_cdf_plus_sf_is_one(self):
        for k in range(-1, 22):
            assert binomial_cdf(k, 20, 0.4) + binomial_sf(k, 20, 0.4) == pytest.approx(
                1.0, abs=1e-12
            )

    def test_out_of_range_k(self):
        assert binomial_pmf(-1, 10, 0.5) == 0.0
        assert binomial_pmf(11, 10, 0.5) == 0.0
        assert binomial_cdf(-1, 10, 0.5) == 0.0
        assert binomial_cdf(10, 10, 0.5) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            binomial_pmf(1, -1, 0.5)
        with pytest.raises(ValueError):
            binomial_pmf(1, 10, 1.5)

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone(self, n, p, k):
        k = min(k, n)
        assert binomial_cdf(k, n, p) <= binomial_cdf(min(n, k + 1), n, p) + 1e-12

    def test_mean_matches(self):
        n, p = 30, 0.25
        mean = sum(k * binomial_pmf(k, n, p) for k in range(n + 1))
        assert mean == pytest.approx(n * p, rel=1e-9)


class TestHypergeometricDistribution:
    def test_support(self):
        support = hypergeometric_support(10, 4, 7)
        assert support.start == 1  # 7 + 4 - 10
        assert support.stop - 1 == 4

    def test_pmf_sums_to_one(self):
        total = sum(hypergeometric_pmf(k, 30, 12, 10) for k in range(11))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_pmf_vector_matches_scalar(self):
        vector = hypergeometric_pmf_vector(20, 8, 6)
        for k, value in enumerate(vector):
            assert value == pytest.approx(hypergeometric_pmf(k, 20, 8, 6))

    def test_mean_and_variance(self):
        n, marked, draws = 50, 20, 10
        pmf = hypergeometric_pmf_vector(n, marked, draws)
        mean = sum(k * p for k, p in enumerate(pmf))
        var = sum((k - mean) ** 2 * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(hypergeometric_mean(n, marked, draws), rel=1e-9)
        assert var == pytest.approx(hypergeometric_variance(n, marked, draws), rel=1e-9)

    def test_cdf_plus_sf(self):
        for k in range(-1, 12):
            total = hypergeometric_cdf(k, 40, 15, 10) + hypergeometric_sf(k, 40, 15, 10)
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_degenerate_no_marked(self):
        assert hypergeometric_pmf(0, 20, 0, 5) == pytest.approx(1.0)
        assert hypergeometric_sf(0, 20, 0, 5) == 0.0

    def test_all_marked(self):
        assert hypergeometric_pmf(5, 20, 20, 5) == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            hypergeometric_pmf(0, -1, 0, 0)
        with pytest.raises(ValueError):
            hypergeometric_pmf(0, 10, 11, 5)
        with pytest.raises(ValueError):
            hypergeometric_pmf(0, 10, 5, 11)

    @given(
        st.integers(min_value=1, max_value=60),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pmf_normalisation_property(self, n, data):
        marked = data.draw(st.integers(min_value=0, max_value=n))
        draws = data.draw(st.integers(min_value=0, max_value=n))
        total = sum(hypergeometric_pmf(k, n, marked, draws) for k in range(draws + 1))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestProposition314:
    def test_bound_dominates_exact_ratio(self):
        # Proposition 3.14: C(n-c, c-i)/C(n, c) <= (c/n)^i ((n-c)/(n-i))^(c-i).
        for n in (25, 100, 225):
            c = int(2 * math.sqrt(n))
            for i in range(0, c + 1):
                exact = falling_factorial_ratio(n, c, i)
                bound = proposition_3_14_bound(n, c, i)
                assert exact <= bound + 1e-12

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            falling_factorial_ratio(10, 3, 4)
        with pytest.raises(ValueError):
            proposition_3_14_bound(10, 3, 4)
        with pytest.raises(ValueError):
            proposition_3_14_bound(0, 0, 0)
