"""Tests for the Chernoff/Hoeffding bound machinery."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chernoff import (
    FOUR_E,
    chernoff_lower_tail,
    chernoff_upper_tail,
    crash_failure_bound,
    hoeffding_binomial_tail,
    lemma_5_7_bound,
    lemma_5_9_bound,
    masking_psi,
    psi_one,
    psi_two,
)
from repro.analysis.combinatorics import binomial_sf


class TestChernoffUpperTail:
    def test_small_gamma_regime(self):
        # gamma <= 2e - 1 uses exp(-mean * gamma^2 / 4).
        assert chernoff_upper_tail(10.0, 1.0) == pytest.approx(math.exp(-10.0 / 4.0))

    def test_large_gamma_regime(self):
        gamma = 2 * math.e  # > 2e - 1
        assert chernoff_upper_tail(3.0, gamma) == pytest.approx(2.0 ** (-(1 + gamma) * 3.0))

    def test_zero_mean_is_trivial(self):
        assert chernoff_upper_tail(0.0, 1.0) == 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1.0, 1.0)
        with pytest.raises(ValueError):
            chernoff_upper_tail(1.0, 0.0)

    def test_dominates_binomial_tail(self):
        # The bound must dominate the exact binomial tail it bounds.
        n, p = 200, 0.1
        mean = n * p
        for gamma in (0.5, 1.0, 2.0):
            threshold = (1 + gamma) * mean
            exact = binomial_sf(math.floor(threshold), n, p)
            assert exact <= chernoff_upper_tail(mean, gamma) + 1e-9


class TestChernoffLowerTail:
    def test_formula(self):
        assert chernoff_lower_tail(8.0, 0.5) == pytest.approx(math.exp(-8.0 * 0.25 / 2.0))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(-1.0, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(1.0, 1.5)

    def test_dominates_exact_lower_tail(self):
        n, p = 300, 0.2
        mean = n * p
        for delta in (0.3, 0.5, 0.8):
            threshold = (1 - delta) * mean
            exact = 1.0 - binomial_sf(math.ceil(threshold) - 1, n, p)
            assert exact <= chernoff_lower_tail(mean, delta) + 1e-9


class TestHoeffding:
    def test_vacuous_below_mean(self):
        assert hoeffding_binomial_tail(100, 0.5, 40) == 1.0

    def test_zero_above_n(self):
        assert hoeffding_binomial_tail(100, 0.5, 101) == 0.0

    def test_dominates_exact(self):
        n, p = 150, 0.3
        for threshold in (50, 70, 100):
            exact = binomial_sf(threshold, n, p)
            assert exact <= hoeffding_binomial_tail(n, p, threshold) + 1e-9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hoeffding_binomial_tail(0, 0.5, 1)
        with pytest.raises(ValueError):
            hoeffding_binomial_tail(10, 1.5, 1)


class TestCrashFailureBound:
    def test_dominates_exact_failure_probability(self):
        # Fp(R(n,q)) = P(Bin(n,p) > n-q) <= exp(-2n(1-q/n-p)^2).
        n, q = 100, 23
        for p in (0.1, 0.3, 0.5, 0.7):
            exact = binomial_sf(n - q, n, p)
            assert exact <= crash_failure_bound(n, q, p) + 1e-9

    def test_vacuous_when_p_large(self):
        assert crash_failure_bound(100, 23, 0.9) == 1.0

    def test_invalid_quorum_size(self):
        with pytest.raises(ValueError):
            crash_failure_bound(10, 0, 0.5)
        with pytest.raises(ValueError):
            crash_failure_bound(10, 11, 0.5)


class TestPsiFactors:
    def test_psi_one_regimes(self):
        # Continuous-ish at the documented switch point and positive everywhere.
        assert psi_one(3.0) == pytest.approx((0.5) ** 2 / 12.0)
        assert psi_one(FOUR_E + 1.0) == pytest.approx(1.0 / 3.0)

    def test_psi_two_example_values(self):
        # Paper remark: ell = 3 -> eps <= 2 exp(-q^2/(48 n)), i.e. psi = 1/48.
        assert min(psi_one(3.0), psi_two(3.0)) == pytest.approx(1.0 / 48.0)
        # ell = 20 -> eps <= 2 exp(-q^2/(10 n)) approximately.
        assert min(psi_one(20.0), psi_two(20.0)) == pytest.approx(0.1, rel=0.2)

    def test_requires_ell_above_two(self):
        with pytest.raises(ValueError):
            psi_one(2.0)
        with pytest.raises(ValueError):
            psi_two(1.5)

    @given(st.floats(min_value=2.01, max_value=100.0))
    @settings(max_examples=80, deadline=None)
    def test_factors_positive(self, ell):
        assert psi_one(ell) > 0
        assert psi_two(ell) > 0
        assert masking_psi(ell) == min(psi_one(ell), psi_two(ell))


class TestLemmaBounds:
    def test_lemma_bounds_formulae(self):
        n, q, ell = 100, 40, 8.0
        assert lemma_5_7_bound(n, q, ell) == pytest.approx(math.exp(-psi_one(ell) * 16.0))
        assert lemma_5_9_bound(n, q, ell) == pytest.approx(math.exp(-psi_two(ell) * 16.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lemma_5_7_bound(0, 1, 3.0)
        with pytest.raises(ValueError):
            lemma_5_9_bound(10, 11, 3.0)
