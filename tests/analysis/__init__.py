"""Test package (keeps same-named test modules in sibling directories importable)."""
