"""Tests for the exact/bounded intersection probabilities (the heart of the paper)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intersection import (
    default_masking_threshold,
    dissemination_epsilon_bound,
    dissemination_epsilon_exact,
    expected_overlap,
    intersection_epsilon_bound,
    intersection_epsilon_exact,
    intersection_probability,
    masking_epsilon_bound,
    masking_epsilon_exact,
    masking_error_decomposition,
    masking_expectations,
)


def monte_carlo_disjoint(n, q, trials, seed=0):
    rng = random.Random(seed)
    population = range(n)
    misses = 0
    for _ in range(trials):
        first = set(rng.sample(population, q))
        second = set(rng.sample(population, q))
        if not first & second:
            misses += 1
    return misses / trials


def monte_carlo_dissemination(n, q, b, trials, seed=0):
    rng = random.Random(seed)
    population = range(n)
    bad = set(range(b))  # by symmetry any fixed B works
    misses = 0
    for _ in range(trials):
        first = set(rng.sample(population, q))
        second = set(rng.sample(population, q))
        if (first & second) <= bad:
            misses += 1
    return misses / trials


def monte_carlo_masking(n, q, b, k, trials, seed=0):
    rng = random.Random(seed)
    population = range(n)
    bad = set(range(b))
    errors = 0
    for _ in range(trials):
        read = set(rng.sample(population, q))
        write = set(rng.sample(population, q))
        faulty_hit = len(read & bad)
        correct_fresh = len((read & write) - bad)
        if not (faulty_hit < k and correct_fresh >= k):
            errors += 1
    return errors / trials


class TestIntersectionEpsilon:
    def test_exact_small_case_by_hand(self):
        # n=4, q=2: P(disjoint) = C(2,2)/C(4,2) = 1/6.
        assert intersection_epsilon_exact(4, 2) == pytest.approx(1.0 / 6.0)

    def test_asymmetric_quorum_sizes(self):
        # n=5, |Q|=2, |Q'|=3: P(disjoint) = C(3,3)/C(5,3) = 1/10.
        assert intersection_epsilon_exact(5, 2, 3) == pytest.approx(0.1)

    def test_certain_intersection_when_oversized(self):
        assert intersection_epsilon_exact(10, 6) == 0.0
        assert intersection_probability(10, 6) == 1.0

    def test_bound_dominates_exact(self):
        for n in (25, 100, 400):
            for q in range(1, int(math.sqrt(n) * 3)):
                assert intersection_epsilon_exact(n, q) <= intersection_epsilon_bound(n, q) + 1e-12

    def test_matches_monte_carlo(self):
        n, q = 36, 8
        exact = intersection_epsilon_exact(n, q)
        estimate = monte_carlo_disjoint(n, q, trials=30_000, seed=3)
        assert estimate == pytest.approx(exact, abs=0.01)

    def test_monotone_decreasing_in_q(self):
        values = [intersection_epsilon_exact(100, q) for q in range(1, 51)]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))

    def test_expected_overlap(self):
        assert expected_overlap(100, 10) == pytest.approx(1.0)
        assert expected_overlap(100, 20, 10) == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            intersection_epsilon_exact(0, 1)
        with pytest.raises(ValueError):
            intersection_epsilon_exact(10, 0)
        with pytest.raises(ValueError):
            intersection_epsilon_exact(10, 11)

    @given(st.integers(min_value=2, max_value=120), st.data())
    @settings(max_examples=60, deadline=None)
    def test_probability_in_unit_interval(self, n, data):
        q = data.draw(st.integers(min_value=1, max_value=n))
        eps = intersection_epsilon_exact(n, q)
        assert 0.0 <= eps <= 1.0


class TestDisseminationEpsilon:
    def test_reduces_to_intersection_for_b_zero(self):
        assert dissemination_epsilon_exact(50, 10, 0) == pytest.approx(
            intersection_epsilon_exact(50, 10)
        )

    def test_exact_larger_than_plain_intersection(self):
        # Requiring intersection outside B is harder than plain intersection.
        n, q, b = 64, 16, 10
        assert dissemination_epsilon_exact(n, q, b) >= intersection_epsilon_exact(n, q)

    def test_monotone_in_b(self):
        n, q = 100, 24
        values = [dissemination_epsilon_exact(n, q, b) for b in range(0, 40, 5)]
        assert all(a <= b + 1e-15 for a, b in zip(values, values[1:]))

    def test_matches_monte_carlo(self):
        n, q, b = 49, 12, 8
        exact = dissemination_epsilon_exact(n, q, b)
        estimate = monte_carlo_dissemination(n, q, b, trials=30_000, seed=11)
        assert estimate == pytest.approx(exact, abs=0.01)

    def test_bound_dominates_exact_for_third(self):
        # Lemma 4.3 regime: b = n/3.
        n = 99
        b = n // 3
        for q in range(6, 40, 4):
            assert dissemination_epsilon_exact(n, q, b) <= dissemination_epsilon_bound(n, q, b) + 1e-12

    def test_bound_dominates_exact_for_large_fraction(self):
        # Lemma 4.5 regime: alpha = 1/2.
        n = 100
        b = 50
        for q in range(6, 40, 4):
            assert dissemination_epsilon_exact(n, q, b) <= dissemination_epsilon_bound(n, q, b) + 1e-12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            dissemination_epsilon_exact(10, 5, 10)
        with pytest.raises(ValueError):
            dissemination_epsilon_exact(10, 0, 2)


class TestMaskingEpsilon:
    def test_default_threshold(self):
        assert default_masking_threshold(100, 40) == pytest.approx(8.0)

    def test_expectations_bracket_threshold(self):
        # With ell = q/b > 2 the paper's threshold separates the expectations.
        n, q, b = 100, 40, 10
        e_faulty, e_correct = masking_expectations(n, q, b)
        k = default_masking_threshold(n, q)
        assert e_faulty < k < e_correct

    def test_decomposition_consistency(self):
        n, q, b = 100, 40, 10
        decomposition = masking_error_decomposition(n, q, b)
        # The exact error is at most the union bound and at least each part
        # minus the other (union bound sandwich).
        assert decomposition.exact_error <= decomposition.union_bound + 1e-12
        assert decomposition.exact_error >= decomposition.p_too_few_correct - 1e-12
        assert 0.0 <= decomposition.p_too_many_faulty <= 1.0
        assert 0.0 <= decomposition.p_too_few_correct <= 1.0

    def test_matches_monte_carlo(self):
        n, q, b = 49, 21, 4
        k = default_masking_threshold(n, q)
        exact = masking_epsilon_exact(n, q, b, k)
        estimate = monte_carlo_masking(n, q, b, k, trials=30_000, seed=5)
        assert estimate == pytest.approx(exact, abs=0.012)

    def test_bound_dominates_exact(self):
        # Theorem 5.10 regime: ell = q/b > 2 and k = q^2/(2n).
        n = 400
        for b in (4, 8, 16):
            for ell in (3, 5, 8):
                q = ell * b
                if q > n - b:
                    continue
                assert masking_epsilon_exact(n, q, b) <= masking_epsilon_bound(n, q, b) + 1e-12

    def test_bound_requires_ell_above_two(self):
        with pytest.raises(ValueError):
            masking_epsilon_bound(100, 20, 10)
        with pytest.raises(ValueError):
            masking_epsilon_bound(100, 20, 0)

    def test_error_decreases_with_quorum_size(self):
        n, b = 225, 7
        values = [masking_epsilon_exact(n, q, b) for q in range(40, 100, 10)]
        assert values[-1] < values[0]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            masking_error_decomposition(100, 40, 10, k=0)

    def test_zero_byzantine_never_fabricates(self):
        # With b = 0 the only failure mode is too few fresh servers.
        decomposition = masking_error_decomposition(100, 30, 0)
        assert decomposition.p_too_many_faulty == 0.0
