"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.threshold import MajorityQuorumSystem
from repro.simulation.cluster import Cluster


@pytest.fixture
def rng():
    """A deterministically seeded random source."""
    return random.Random(12345)


@pytest.fixture
def small_uniform_system():
    """R(25, 10): the smallest Table 2 configuration (ε ≤ 1e-3)."""
    return UniformEpsilonIntersectingSystem(25, 10)


@pytest.fixture
def medium_uniform_system():
    """R(100, 23): the n=100 Table 2 configuration (ε ≤ 1e-3)."""
    return UniformEpsilonIntersectingSystem(100, 23)


@pytest.fixture
def dissemination_system():
    """A (b, ε)-dissemination system over 100 servers with b = 10."""
    return ProbabilisticDisseminationSystem.for_epsilon(100, 10, 1e-3)


@pytest.fixture
def masking_system():
    """A (b, ε)-masking system over 100 servers with b = 5."""
    return ProbabilisticMaskingSystem.for_epsilon(100, 5, 1e-3)


@pytest.fixture
def majority_25():
    """The strict majority system over 25 servers."""
    return MajorityQuorumSystem(25)


@pytest.fixture
def grid_25():
    """The 5x5 Maekawa grid."""
    return GridQuorumSystem(25)


@pytest.fixture
def healthy_cluster():
    """A 25-server cluster with no failures."""
    return Cluster(25, seed=7)
