"""Tests for the warn-only benchmark trajectory comparison script."""

from __future__ import annotations

import importlib.util
import pathlib

SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "compare_bench.py"
)
spec = importlib.util.spec_from_file_location("compare_bench", SCRIPT)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


def doc(**benches):
    return {"schema": 1, "benches": benches}


class TestCompare:
    def test_regression_beyond_tolerance_is_reported(self):
        baseline = doc(svc={"ops_per_second": 1000.0, "instrumentation": "off"})
        current = doc(svc={"ops_per_second": 700.0, "instrumentation": "off"})
        regressions = compare_bench.compare(current, baseline)
        assert len(regressions) == 1
        name, field, old, new, drop = regressions[0]
        assert (name, field) == ("svc", "ops_per_second")
        assert drop > compare_bench.REGRESSION_TOLERANCE

    def test_within_tolerance_is_silent(self):
        baseline = doc(svc={"ops_per_second": 1000.0})
        current = doc(svc={"ops_per_second": 850.0})
        assert compare_bench.compare(current, baseline) == []

    def test_instrumentation_mismatch_is_never_compared(self, capsys):
        # A traced run is a different code path: its overhead must not be
        # reported as a regression against an untraced baseline.
        baseline = doc(svc={"ops_per_second": 1000.0, "instrumentation": "off"})
        current = doc(svc={"ops_per_second": 400.0, "instrumentation": "on"})
        assert compare_bench.compare(current, baseline) == []
        assert "skipped" in capsys.readouterr().out

    def test_missing_instrumentation_field_means_off(self):
        # Pre-stamp baselines compare fine against freshly stamped entries.
        baseline = doc(svc={"ops_per_second": 1000.0})
        current = doc(svc={"ops_per_second": 500.0, "instrumentation": "off"})
        assert len(compare_bench.compare(current, baseline)) == 1
        traced = doc(svc={"ops_per_second": 500.0, "instrumentation": "on"})
        assert compare_bench.compare(traced, baseline) == []


class TestChurnFields:
    def test_probe_fallback_reduction_regression_is_reported(self):
        baseline = doc(churn={"probe_fallback_reduction": 10.0})
        current = doc(churn={"probe_fallback_reduction": 5.0})
        regressions = compare_bench.compare(current, baseline)
        assert [(r[0], r[1]) for r in regressions] == [
            ("churn", "probe_fallback_reduction")
        ]

    def test_fresh_read_fraction_regression_is_reported(self):
        baseline = doc(churn={"fresh_read_fraction": 1.0})
        current = doc(churn={"fresh_read_fraction": 0.7})
        regressions = compare_bench.compare(current, baseline)
        assert [(r[0], r[1]) for r in regressions] == [
            ("churn", "fresh_read_fraction")
        ]

    def test_churn_fields_still_refuse_cross_instrumentation(self):
        baseline = doc(
            churn={"probe_fallback_reduction": 10.0, "instrumentation": "off"}
        )
        current = doc(
            churn={"probe_fallback_reduction": 2.0, "instrumentation": "on"}
        )
        assert compare_bench.compare(current, baseline) == []


class TestShardImbalance:
    def test_spread_beyond_threshold_is_flagged(self):
        current = doc(sharded={"shard_imbalance": 5.5})
        assert compare_bench.imbalance_warnings(current) == [("sharded", 5.5)]

    def test_committed_baseline_spread_stays_silent(self):
        # The real cluster bench sits around 2.7x; that must not warn.
        current = doc(sharded={"shard_imbalance": 2.7})
        assert compare_bench.imbalance_warnings(current) == []

    def test_cold_shard_infinity_is_flagged(self):
        current = doc(sharded={"shard_imbalance": float("inf")})
        assert compare_bench.imbalance_warnings(current) == [
            ("sharded", float("inf"))
        ]

    def test_entries_without_the_field_are_ignored(self):
        current = doc(svc={"ops_per_second": 1000.0})
        assert compare_bench.imbalance_warnings(current) == []

    def test_imbalance_never_gates(self, tmp_path, capsys):
        import json

        current = tmp_path / "BENCH_service.json"
        current.write_text(
            json.dumps(doc(sharded={"shard_imbalance": 9.0}))
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc()))
        assert compare_bench.main([str(current), str(baseline)]) == 0
        assert "shard imbalance" in capsys.readouterr().out


class TestFloors:
    def test_floor_violation_is_flagged(self):
        current = doc(
            svc={"ops_per_second": 1500.0, "floor_ops_per_second": 2000.0}
        )
        violations = compare_bench.floor_violations(current)
        assert violations == [("svc", 1500.0, 2000.0, True)]

    def test_ungated_floor_is_informational(self):
        current = doc(
            svc={
                "ops_per_second": 1500.0,
                "floor_ops_per_second": 2000.0,
                "floor_gated": False,
            }
        )
        assert compare_bench.floor_violations(current)[0][3] is False

    def test_meeting_the_floor_is_clean(self):
        current = doc(
            svc={"ops_per_second": 2500.0, "floor_ops_per_second": 2000.0}
        )
        assert compare_bench.floor_violations(current) == []
