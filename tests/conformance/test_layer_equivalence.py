"""Cross-layer conformance: four execution paths, one read semantics.

The repo now evaluates the same declarative
:class:`~repro.simulation.scenario.ScenarioSpec` through four independent
execution paths:

1. the **sequential** Monte-Carlo engine (the protocol-stack oracle),
2. the **batch** NumPy engine (vectorised classification kernels),
3. the **in-process service** (asyncio nodes, simulated transport),
4. the **TCP service** (real localhost sockets, wire frames, wall-clock
   deadlines).

This suite is the weld between them: for a grid of scenarios — benign /
crash / Byzantine-forger failure models × masking / dissemination read
protocols — it runs all four paths at a fixed seed and asserts

* **zero fabricated reads are ever accepted on any path** (the paper's
  safety claim; every grid system tolerates its configured adversary:
  masking ``k > b``, dissemination signatures), and
* the **classification rates agree within statistical tolerance**.

Rates are compared on the common ground the paths share.  The engines read
*after* the write completes, so an ε-miss surfaces as ``empty``/``stale``;
the services read *concurrently*, so early reads can be legitimately
``empty`` (the key not yet written) and an ε-miss surfaces as ``stale``.
The comparable quantities are therefore (a) the fresh rate among *decided*
(non-empty) reads, which must agree pairwise across all four paths, and
(b) each path's deviation mass, which must stay within its scenario's
analytical ε plus sampling slack.

Beyond the 4×8 grid, standalone cells weld in the variants: the **binary
codec** (the struct-packed frames negotiated per connection must classify
reads exactly like the JSON ones), a **ClusterDeployment** (one server
process per shard plus worker processes: real process boundaries must not
change the semantics either), and two **anti-entropy** cells (piggybacked
read-repair + background gossip armed on every path: moving freshness off
the read path must not move the rates, and gossip must never become a
fabrication vector).  All are held to the same zero-fabrication and
rate-agreement bars and stay blocking in CI.

Everything is pinned to one module-level seed so the CI ``conformance`` job
is reproducible run to run.
"""

from __future__ import annotations

import math

import pytest

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.protocol.timestamps import Timestamp
from repro.service.load import ServiceLoadSpec, run_service_load
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import estimate_read_consistency
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec

#: One seed for the whole grid: the CI job must reproduce byte for byte on
#: the simulated paths and rate-for-rate on the wall-clock one.
SEED = 20260728

#: Trials per Monte-Carlo engine (the batch engine is cheap; the sequential
#: oracle drives real protocol objects per trial).
SEQUENTIAL_TRIALS = 300
BATCH_TRIALS = 5_000

#: Pairwise tolerance on the decided-fresh rate.  The smallest sample in
#: the comparison is the TCP run (~80 reads); at p ≈ 0.99 its binomial σ is
#: ~0.011, so 0.06 is a ≥5σ band for every pair.
RATE_TOLERANCE = 0.06

#: Slack added to the analytical ε when bounding a path's deviation mass.
EPSILON_SLACK = 0.05

# The grid: each read protocol deployed against the three failure regimes.
# Both systems tolerate the injected adversary by construction (masking:
# k = 5 > b = 3; dissemination: forged signatures never verify), which is
# what makes the zero-fabrication assertion structural rather than lucky.
MASKING = ProbabilisticMaskingSystem(36, 18, 3)
DISSEMINATION = ProbabilisticDisseminationSystem.for_epsilon(36, 3, 1e-2)
assert MASKING.read_threshold > 3

FAILURE_MODELS = {
    "benign": FailureModel.none(),
    "crash": FailureModel.random_crashes(3),
    "forger": FailureModel.colluding_forgers(3, "FORGED", Timestamp.forged_maximum()),
    # -- the adversary fleet (PR 10): every strategy the small-config explorer
    # enumerates exhaustively also exists as a samplable adversary here, run
    # through all four paths at n = 36.
    #
    # partition: the adversary picks the victims (a fixed id block), the
    # worst case uniform crash sampling essentially never draws.
    "partition": FailureModel.targeted_partition((0, 1, 2)),
    # gray: flaky-but-honest servers dropping 30% of messages — availability
    # erosion with zero fabrication risk.
    "gray": FailureModel.gray_nodes(4, 0.3),
    # reorder: no faulty servers, adversarially shuffled delivery order —
    # classification must be order-invariant on every path.
    "reorder": FailureModel.message_reordering(),
    # clique: colluding forgers using an honest-SHAPED timestamp (no absurd
    # counter), so nothing short of the threshold/signature machinery can
    # reject it.  Timestamp(1, 7) outranks the workload's honest
    # Timestamp(1, 0) by writer id without tying it.
    "clique": FailureModel.timestamp_forging_clique(3, "FORGED", Timestamp(1, 7)),
}

GRID = {
    f"{kind}-{failure}": ScenarioSpec(system=system, failure_model=model)
    for kind, system in (("masking", MASKING), ("dissemination", DISSEMINATION))
    for failure, model in FAILURE_MODELS.items()
}

# The contention cells: three concurrent writers race on one register while
# the forgers keep answering.  Multi-writer timestamps are writer-id
# tie-broken, so all four paths must still resolve every race to the same
# winner — the decided-fresh agreement below is exactly that claim.
GRID.update(
    {
        f"{kind}-contended": ScenarioSpec(
            system=system, failure_model=FAILURE_MODELS["forger"], writers=3
        )
        for kind, system in (("masking", MASKING), ("dissemination", DISSEMINATION))
    }
)


def engine_counts(spec: ScenarioSpec, engine: str, trials: int) -> dict:
    report = estimate_read_consistency(spec, trials=trials, seed=SEED, engine=engine)
    return {
        "total": report.trials,
        "fresh": report.fresh,
        "stale": report.stale,
        "empty": report.empty,
        "fabricated": report.fabricated,
    }


def service_counts(spec: ScenarioSpec, transport: str, codec: str = "json") -> dict:
    if transport == "inproc":
        load = ServiceLoadSpec(
            scenario=spec,
            clients=40,
            reads_per_client=5,
            writes=4,
            deadline=0.02,
            seed=SEED,
        )
    else:
        load = ServiceLoadSpec(
            scenario=spec,
            clients=20,
            reads_per_client=4,
            writes=3,
            deadline=0.1,
            transport="tcp",
            codec=codec,
            seed=SEED,
        )
    report = run_service_load(load)
    assert report.reads_completed == load.clients * load.reads_per_client
    return {
        "total": report.reads_completed,
        "fresh": report.outcomes["fresh"],
        "stale": report.outcomes["stale"],
        "empty": report.outcomes["empty"],
        "fabricated": report.outcomes["fabricated"],
    }


def decided_fresh_rate(counts: dict) -> float:
    """Fresh fraction among non-⊥ reads — the rate all four paths share.

    ``empty`` is excluded because it means different things per path: an
    ε-miss for the engines (read strictly after the write), a benign
    not-yet-written race for the concurrent services.
    """
    decided = counts["fresh"] + counts["stale"] + counts["fabricated"]
    return counts["fresh"] / decided if decided else 1.0


def deviation_mass(counts: dict, concurrent: bool) -> float:
    """The path's observed probability of missing the settled write.

    Engines: everything but fresh (their reads always follow a completed
    write).  Services: stale + fabricated over all reads (their empties are
    starts-before-first-write, not misses).
    """
    if concurrent:
        return (counts["stale"] + counts["fabricated"]) / counts["total"]
    return 1.0 - counts["fresh"] / counts["total"]


def assert_paths_conform(cell: str, spec: ScenarioSpec, paths: dict) -> None:
    """The conformance bar every cell is held to, old and new alike."""
    # -- safety: zero fabricated-accepted reads, on every path, always ------------
    for name, counts in paths.items():
        assert counts["fabricated"] == 0, (
            f"{cell}/{name} accepted {counts['fabricated']} fabricated reads "
            f"(counts: {counts})"
        )

    # -- the comparison must rest on real samples ---------------------------------
    for name, counts in paths.items():
        decided = counts["fresh"] + counts["stale"] + counts["fabricated"]
        assert decided >= counts["total"] * 0.3, (
            f"{cell}/{name} decided only {decided} of {counts['total']} reads; "
            f"the rate comparison would be vacuous (counts: {counts})"
        )

    # -- agreement: decided-fresh rates within statistical tolerance --------------
    rates = {name: decided_fresh_rate(counts) for name, counts in paths.items()}
    names = sorted(rates)
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            assert math.isclose(
                rates[first], rates[second], abs_tol=RATE_TOLERANCE
            ), f"{cell}: {first}={rates[first]:.4f} vs {second}={rates[second]:.4f}"

    # -- calibration: every path's deviation stays within ε + slack ---------------
    epsilon = spec.system.epsilon
    for name, counts in paths.items():
        deviation = deviation_mass(counts, concurrent=name.startswith("service"))
        assert deviation <= epsilon + EPSILON_SLACK, (
            f"{cell}/{name} deviated on {deviation:.4f} of its reads "
            f"(analytical ε = {epsilon:.4f}; counts: {counts})"
        )


@pytest.mark.parametrize("cell", sorted(GRID))
def test_all_four_paths_agree_and_accept_no_fabrication(cell):
    spec = GRID[cell]
    paths = {
        "sequential": engine_counts(spec, "sequential", SEQUENTIAL_TRIALS),
        "batch": engine_counts(spec, "batch", BATCH_TRIALS),
        "service-inproc": service_counts(spec, "inproc"),
        "service-tcp": service_counts(spec, "tcp"),
    }
    assert_paths_conform(cell, spec, paths)


def test_binary_codec_tcp_cell():
    """The struct-packed wire codec against the adversarial masking cell.

    Forged timestamps and signatures must survive binary serialisation
    exactly as they do JSON (and still be outvoted): same seed, same
    bars, decoded by a different codec.
    """
    spec = GRID["masking-forger"]
    paths = {
        "batch": engine_counts(spec, "batch", BATCH_TRIALS),
        "service-tcp-json": service_counts(spec, "tcp"),
        "service-tcp-binary": service_counts(spec, "tcp", codec="binary"),
    }
    assert_paths_conform("masking-forger-binary", spec, paths)


def cluster_counts(spec: ScenarioSpec) -> dict:
    """The TCP workload on a ClusterDeployment: 2 shard server processes,
    2 load-worker processes, binary codec."""
    load = ServiceLoadSpec(
        scenario=spec,
        clients=20,
        reads_per_client=4,
        writes=4,
        deadline=0.1,
        transport="tcp",
        shards=2,
        keys=2,
        codec="binary",
        processes=2,
        seed=SEED,
    )
    report = run_service_load(load)
    assert report.reads_completed == load.clients * load.reads_per_client
    return {
        "total": report.reads_completed,
        "fresh": report.outcomes["fresh"],
        "stale": report.outcomes["stale"],
        "empty": report.outcomes["empty"],
        "fabricated": report.outcomes["fabricated"],
    }


def test_cluster_deployment_cell():
    """Real process boundaries must not change the read semantics.

    The multi-process path (spawned shard servers, partitioned worker
    load, merged report) is held to the same agreement and
    zero-fabrication bars as the in-loop paths — against the Byzantine
    forger model, so forged replies cross genuine process boundaries.
    """
    spec = GRID["masking-forger"]
    paths = {
        "batch": engine_counts(spec, "batch", BATCH_TRIALS),
        "service-inproc": service_counts(spec, "inproc"),
        "service-cluster": cluster_counts(spec),
    }
    assert_paths_conform("masking-forger-cluster", spec, paths)


#: The anti-entropy configuration the AE cells arm: gossip after each write
#: on the engines, piggybacked repair + background gossip on the services.
#: Freshness moving off the read path must not move the *rates* — the same
#: four-way agreement and zero-fabrication bars apply.
ANTI_ENTROPY = AntiEntropySpec(fanout=3, rounds=2, interval=0.001, repair_budget=4)


def test_anti_entropy_masking_forger_cell():
    """All four paths with anti-entropy armed, under colluding forgers.

    Gossip must not become a fabrication vector: the forged records the
    Byzantine servers hold are rejected by the verifiability rules before
    adoption, so the zero-fabrication bar holds with diffusion running.
    """
    spec = ScenarioSpec(
        system=MASKING,
        failure_model=FAILURE_MODELS["forger"],
        anti_entropy=ANTI_ENTROPY,
    )
    paths = {
        "sequential": engine_counts(spec, "sequential", SEQUENTIAL_TRIALS),
        "batch": engine_counts(spec, "batch", BATCH_TRIALS),
        "service-inproc": service_counts(spec, "inproc"),
        "service-tcp": service_counts(spec, "tcp"),
    }
    assert_paths_conform("masking-forger-anti-entropy", spec, paths)


def test_anti_entropy_dissemination_crash_cell():
    """All four paths with anti-entropy armed, under benign crashes.

    The crash regime is where diffusion does its freshness work; the cell
    pins that the engines' post-write gossip and the services' background
    gossip land on the same decided-fresh rate.
    """
    spec = ScenarioSpec(
        system=DISSEMINATION,
        failure_model=FAILURE_MODELS["crash"],
        anti_entropy=ANTI_ENTROPY,
    )
    paths = {
        "sequential": engine_counts(spec, "sequential", SEQUENTIAL_TRIALS),
        "batch": engine_counts(spec, "batch", BATCH_TRIALS),
        "service-inproc": service_counts(spec, "inproc"),
        "service-tcp": service_counts(spec, "tcp"),
    }
    assert_paths_conform("dissemination-crash-anti-entropy", spec, paths)


def test_grid_covers_the_advertised_cells():
    """The grid: (benign / crash / forger / fleet + contended) × both systems."""
    assert len(GRID) == 16
    kinds = {spec.resolved_register_kind() for spec in GRID.values()}
    assert kinds == {"masking", "dissemination"}
    byzantine_counts = {spec.failure_model.byzantine_count for spec in GRID.values()}
    assert byzantine_counts == {0, 3}
    fleet_kinds = {spec.failure_model.kind for spec in GRID.values()}
    assert {
        "targeted_partition",
        "gray_nodes",
        "message_reordering",
        "timestamp_forging_clique",
    } <= fleet_kinds
    # Both forging adversaries are Byzantine; the rest of the fleet is benign.
    assert GRID["masking-clique"].failure_model.forges_values
    assert GRID["masking-gray"].failure_model.byzantine_count == 0
    writer_counts = {spec.writers for spec in GRID.values()}
    assert writer_counts == {1, 3}
    contended = [name for name in GRID if name.endswith("contended")]
    assert all(GRID[name].writers == 3 for name in contended)


def test_simulated_paths_reproduce_exactly_at_the_pinned_seed():
    """Engines and the in-process service are deterministic per seed.

    (The TCP path is deliberately exempt: wall-clock scheduling is part of
    what it measures; only its *rates* are pinned, by the grid test above.)
    """
    spec = GRID["masking-forger"]
    assert engine_counts(spec, "batch", 2_000) == engine_counts(spec, "batch", 2_000)
    assert engine_counts(spec, "sequential", 100) == engine_counts(
        spec, "sequential", 100
    )
    assert service_counts(spec, "inproc") == service_counts(spec, "inproc")
