"""Tests for the Figure 1-3 generators (shape checks against the paper)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.figures import (
    FIGURE_EPSILON,
    default_probability_grid,
    figure1_curves,
    figure2_curves,
    figure3_curves,
)
from repro.experiments.report import render_figure


GRID = default_probability_grid(21)


def series_by_prefix(figure, prefix):
    matches = [label for label in figure.labels() if label.startswith(prefix)]
    assert matches, f"no series starting with {prefix!r} in {figure.labels()}"
    return {label: figure.series[label] for label in matches}


class TestProbabilityGrid:
    def test_grid_spans_unit_interval(self):
        grid = default_probability_grid(11)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert len(grid) == 11

    def test_grid_validation(self):
        with pytest.raises(ExperimentError):
            default_probability_grid(1)


class TestFigure1:
    def test_contains_expected_series(self):
        figure = figure1_curves(ps=GRID)
        labels = figure.labels()
        assert any("strict lower bound" in label for label in labels)
        assert any("R(n=100" in label for label in labels)
        assert any("R(n=300" in label for label in labels)
        assert any("strict threshold (n=100" in label for label in labels)

    def test_probabilistic_beats_threshold_at_moderate_p(self):
        # The paper's right-hand graphs: the probabilistic construction
        # decisively beats the strict threshold construction.
        figure = figure1_curves(ps=GRID)
        prob = next(iter(series_by_prefix(figure, "probabilistic R(n=300").values()))
        thresh = next(iter(series_by_prefix(figure, "strict threshold (n=300").values()))
        for index, p in enumerate(GRID):
            if 0.3 <= p <= 0.6:
                assert prob[index].failure_probability <= thresh[index].failure_probability + 1e-12

    def test_probabilistic_beats_strict_lower_bound_above_half(self):
        # The paper's headline: for p in [1/2, 1 - ell/sqrt(n)] the
        # construction beats *every* strict system (whose Fp >= p there).
        figure = figure1_curves(ps=GRID)
        prob = next(iter(series_by_prefix(figure, "probabilistic R(n=300").values()))
        bound = next(iter(series_by_prefix(figure, "strict lower bound").values()))
        beats = [
            prob[i].failure_probability < bound[i].failure_probability
            for i, p in enumerate(GRID)
            if 0.5 <= p <= 0.7
        ]
        assert all(beats)

    def test_curves_are_monotone_in_p(self):
        figure = figure1_curves(ps=GRID)
        for label, curve in figure.series.items():
            values = [point.failure_probability for point in curve]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), label

    def test_crossover_helper(self):
        figure = figure1_curves(ps=GRID)
        prob_label = next(iter(series_by_prefix(figure, "probabilistic R(n=300")))
        bound_label = next(iter(series_by_prefix(figure, "strict lower bound")))
        crossover = figure.crossover(prob_label, bound_label)
        assert crossover is not None
        assert 0.0 < crossover <= 0.6

    def test_epsilon_recorded(self):
        assert figure1_curves(ps=GRID).epsilon == FIGURE_EPSILON

    def test_render(self):
        text = render_figure(figure1_curves(ps=GRID))
        assert "Figure 1" in text
        assert "p" in text


class TestFigure2:
    def test_dissemination_construction_beats_strict_threshold(self):
        figure = figure2_curves(ps=GRID)
        prob = next(iter(series_by_prefix(figure, "probabilistic dissemination R(n=300").values()))
        thresh = next(
            iter(series_by_prefix(figure, "strict dissemination threshold (n=300").values())
        )
        # The strict threshold quorums are larger than a majority, so the gap
        # is even more pronounced than in Figure 1.
        for index, p in enumerate(GRID):
            if 0.3 <= p <= 0.6:
                assert prob[index].failure_probability <= thresh[index].failure_probability + 1e-12

    def test_beats_lower_bound_above_half(self):
        figure = figure2_curves(ps=GRID)
        prob = next(iter(series_by_prefix(figure, "probabilistic dissemination R(n=300").values()))
        bound = next(iter(series_by_prefix(figure, "strict lower bound").values()))
        for index, p in enumerate(GRID):
            if 0.5 <= p <= 0.7:
                assert prob[index].failure_probability < bound[index].failure_probability

    def test_monotone_curves(self):
        figure = figure2_curves(ps=GRID)
        for label, curve in figure.series.items():
            values = [point.failure_probability for point in curve]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), label


class TestFigure3:
    def test_masking_construction_beats_strict_threshold(self):
        figure = figure3_curves(ps=GRID)
        prob = next(iter(series_by_prefix(figure, "probabilistic masking Rk(n=300").values()))
        thresh = next(iter(series_by_prefix(figure, "strict masking threshold (n=300").values()))
        for index, p in enumerate(GRID):
            if 0.3 <= p <= 0.6:
                assert prob[index].failure_probability <= thresh[index].failure_probability + 1e-12

    def test_masking_quorums_larger_than_plain_but_still_win(self):
        figure1 = figure1_curves(ps=GRID)
        figure3 = figure3_curves(ps=GRID)
        plain = next(iter(series_by_prefix(figure1, "probabilistic R(n=100").values()))
        masking = next(iter(series_by_prefix(figure3, "probabilistic masking Rk(n=100").values()))
        # Larger quorums -> (weakly) worse failure probability at every p.
        for index in range(len(GRID)):
            assert masking[index].failure_probability >= plain[index].failure_probability - 1e-12

    def test_monotone_curves(self):
        figure = figure3_curves(ps=GRID)
        for label, curve in figure.series.items():
            values = [point.failure_probability for point in curve]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), label

    def test_render(self):
        text = render_figure(figure3_curves(ps=GRID), sample_every=5)
        assert "Figure 3" in text
