"""Tests for the Table 1-4 generators (shape checks against the paper)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.tables import (
    PAPER_EPSILON,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_UNIVERSE_SIZES,
    paper_byzantine_threshold,
    table1_entries,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.experiments.report import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


class TestTable1:
    def test_entries_cover_all_kinds(self):
        entries = table1_entries(100, 4)
        kinds = {entry.kind for entry in entries}
        assert kinds == {"strict", "dissemination", "masking"}

    def test_bounds_ordered(self):
        entries = {entry.kind: entry for entry in table1_entries(400, 9)}
        assert (
            entries["strict"].load_lower_bound
            < entries["dissemination"].load_lower_bound
            < entries["masking"].load_lower_bound
        )
        assert entries["dissemination"].max_resilience > entries["masking"].max_resilience

    def test_render(self):
        text = render_table1(table1_entries(100, 4), 100, 4)
        assert "Table 1" in text
        assert "masking" in text


class TestTable2:
    def test_row_per_universe_size(self):
        rows = table2_rows()
        assert [row.n for row in rows] == list(PAPER_UNIVERSE_SIZES)

    def test_epsilon_target_met(self):
        for row in table2_rows():
            assert row.epsilon <= PAPER_EPSILON

    def test_probabilistic_quorums_much_smaller_than_threshold(self):
        for row in table2_rows():
            assert row.quorum_size < row.threshold_quorum_size
            # and within a couple of servers of the grid's quorum size scale.
            assert row.quorum_size <= 3 * row.grid_quorum_size

    def test_fault_tolerance_shape(self):
        # Probabilistic fault tolerance is Theta(n): far above the grid's sqrt(n)
        # and above the threshold system's ~n/2.
        for row in table2_rows():
            assert row.fault_tolerance > row.threshold_fault_tolerance
            assert row.fault_tolerance > row.grid_fault_tolerance
            assert row.fault_tolerance >= row.n - row.quorum_size

    def test_close_to_paper_parameters(self):
        for row in table2_rows():
            assert row.paper_ell == PAPER_TABLE2[row.n]
            # Our exact calibration lands within 2 servers of the paper's q.
            assert abs(row.quorum_size - row.paper_quorum_size) <= 2

    def test_quorum_size_scales_like_sqrt_n(self):
        rows = {row.n: row for row in table2_rows()}
        ratio_large = rows[900].quorum_size / math.sqrt(900)
        ratio_small = rows[25].quorum_size / math.sqrt(25)
        assert 0.5 < ratio_large / ratio_small < 2.0

    def test_render(self):
        text = render_table2(table2_rows())
        assert "Table 2" in text
        assert " 900 " in text


class TestTable3:
    def test_byzantine_threshold_choice(self):
        assert paper_byzantine_threshold(100) == 4
        assert paper_byzantine_threshold(900) == 14

    def test_epsilon_target_met(self):
        for row in table3_rows():
            assert row.epsilon <= PAPER_EPSILON
            assert row.b == paper_byzantine_threshold(row.n)

    def test_matches_paper_quorum_sizes_exactly(self):
        # Our exact calibration reproduces the published Table 3 sizes.
        for row in table3_rows():
            assert row.quorum_size == row.paper_quorum_size
            assert row.paper_ell == PAPER_TABLE3[row.n]

    def test_beats_strict_baselines(self):
        for row in table3_rows():
            assert row.quorum_size < row.threshold_quorum_size
            assert row.fault_tolerance > row.threshold_fault_tolerance
            assert row.fault_tolerance > row.grid_fault_tolerance

    def test_render(self):
        text = render_table3(table3_rows())
        assert "Table 3" in text


class TestTable4:
    def test_epsilon_target_met(self):
        for row in table4_rows():
            assert row.epsilon <= PAPER_EPSILON

    def test_close_to_paper_quorum_sizes(self):
        for row in table4_rows():
            assert row.paper_ell == PAPER_TABLE4[row.n]
            assert abs(row.quorum_size - row.paper_quorum_size) <= 6

    def test_threshold_k_is_consistent(self):
        for row in table4_rows():
            assert row.read_threshold == math.ceil(row.quorum_size ** 2 / (2 * row.n))
            assert row.read_threshold > row.b / 2  # sits between the expectations

    def test_beats_strict_baselines_for_large_n(self):
        for row in table4_rows():
            if row.n >= 100:
                assert row.quorum_size < row.threshold_quorum_size
            assert row.fault_tolerance > row.grid_fault_tolerance

    def test_render(self):
        text = render_table4(table4_rows())
        assert "Table 4" in text
