"""Tests for the contention experiment (ε vs quorum size, grid baseline)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.contention import (
    ContentionPoint,
    contention_curve,
    grid_baseline_system,
    render_contention,
    run_contention,
)
from repro.exceptions import ConfigurationError


class TestGridBaseline:
    def test_wraps_every_grid_quorum(self):
        system = grid_baseline_system(36)
        assert len(system.quorums) == 36  # side² row/column pairs
        assert all(len(q) == 11 for q in system.quorums)

    def test_epsilon_is_numerically_zero(self):
        # Strict grid quorums always intersect; the explicit-pair sum only
        # leaves floating-point residue behind.
        assert grid_baseline_system(36).epsilon < 1e-9

    def test_requires_a_perfect_square(self):
        with pytest.raises(ConfigurationError):
            grid_baseline_system(35)


class TestContentionCurve:
    def test_observed_miss_tracks_the_exact_epsilon(self):
        points = contention_curve(
            n=36, quorum_sizes=(9, 12), writers=3, trials=20_000, seed=5
        )
        assert len(points) == 3  # two probabilistic points + the baseline
        for point in points[:-1]:
            # Hoeffding: 20k trials put the empirical rate within ~0.01 of
            # the true miss probability at >5 sigma.
            assert math.isclose(point.observed_miss, point.epsilon, abs_tol=0.012), (
                f"{point.label}: observed {point.observed_miss:.4f} vs "
                f"exact eps {point.epsilon:.4f}"
            )

    def test_grid_baseline_never_misses(self):
        points = contention_curve(
            n=36, quorum_sizes=(9,), writers=3, trials=5_000, seed=5
        )
        baseline = points[-1]
        assert "grid" in baseline.label
        assert baseline.observed_miss == 0.0

    def test_epsilon_falls_as_quorums_grow(self):
        points = contention_curve(
            n=36, quorum_sizes=(6, 12, 18), writers=2, trials=100, seed=0
        )
        epsilons = [point.epsilon for point in points[:-1]]
        assert epsilons == sorted(epsilons, reverse=True)

    def test_engines_agree_on_the_curve(self):
        batch = contention_curve(
            n=36, quorum_sizes=(9,), writers=3, trials=5_000, seed=5
        )[0]
        sequential = contention_curve(
            n=36, quorum_sizes=(9,), writers=3, trials=300, seed=5,
            engine="sequential",
        )[0]
        # 300 sequential trials at p≈0.05: sigma ≈ 0.0126, so 0.06 is ~5σ.
        assert math.isclose(batch.observed_miss, sequential.observed_miss, abs_tol=0.06)


class TestRendering:
    def test_report_lists_every_point_and_the_trade(self):
        points = [
            ContentionPoint("R(n=36, q=9)", 9, 0.25, 0.05, 0.048, 1000),
            ContentionPoint("grid baseline (strict, q=11)", 11, 0.306, 0.0, 0.0, 1000),
        ]
        report = render_contention(points, n=36, writers=3, engine="batch", seed=0)
        assert "R(n=36, q=9)" in report
        assert "grid baseline" in report
        assert "observed miss" in report
        assert "load" in report

    def test_run_contention_is_self_contained(self):
        report = run_contention(trials=200, quorum_sizes=(9,), seed=1)
        assert "grid baseline" in report
        assert "engine=batch" in report
