"""Tests for the experiment CLI runner."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import (
    ENGINE_NAMES,
    EXPERIMENT_NAMES,
    main,
    run_consistency,
    run_experiment,
    run_figure1,
    run_table1,
    run_table2,
)
from repro.experiments.serve import run_serve


class TestRunExperiment:
    def test_single_experiment(self):
        reports = run_experiment("table1")
        assert len(reports) == 1
        assert "Table 1" in reports[0]

    def test_all_experiments(self):
        reports = run_experiment("all", points=9)
        assert len(reports) == 7
        joined = "\n".join(reports)
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Figure 1", "Figure 2", "Figure 3"):
            assert marker in joined

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_individual_runners_return_text(self):
        assert "Table 1" in run_table1()
        assert "Table 2" in run_table2()
        assert "Figure 1" in run_figure1(points=9)

    def test_consistency_experiment_on_the_batch_engine(self):
        report = run_consistency(engine="batch", seed=3, trials=2_000)
        assert "engine=batch" in report
        for name in ("plain", "dissemination", "masking"):
            assert name in report

    def test_consistency_experiment_on_the_sequential_engine(self):
        report = run_consistency(engine="sequential", seed=3, trials=30)
        assert "engine=sequential" in report
        assert "register=masking" in report

    def test_consistency_validation(self):
        with pytest.raises(ExperimentError):
            run_consistency(engine="warp")
        with pytest.raises(ExperimentError):
            run_consistency(trials=0)
        with pytest.raises(ExperimentError):
            run_consistency(register_kind="warp")

    def test_consistency_register_kind_runs_the_write_back_oracle(self):
        # The orphaned read-repair register, driven declaratively: every
        # theorem scenario hosts it (its read path claims no b tolerance,
        # so no scenario is rejected), and the crash scenario stays fresh.
        report = run_consistency(
            engine="sequential", seed=3, trials=20, register_kind="write-back"
        )
        assert "register=write-back" in report
        for name in ("plain", "dissemination", "masking"):
            assert name in report

    def test_consistency_register_kind_skips_unhostable_scenarios(self):
        # Forcing the masking protocol only fits the thresholded system;
        # the plain/dissemination scenarios are skipped, not mis-measured.
        report = run_consistency(
            engine="batch", seed=3, trials=500, register_kind="masking"
        )
        assert "register=masking" in report
        assert "DisseminationR" not in report
        assert "R(n=64, q=15)" not in report

    def test_serve_experiment_reports_the_safety_verdict(self):
        reports = run_experiment("serve", clients=20, ops=2, seed=3)
        assert len(reports) == 1
        assert "Service load report" in reports[0]
        assert "safety verdict    OK" in reports[0]
        assert "clients=20" in reports[0]
        assert "dispatch=batched" in reports[0]

    def test_serve_runs_on_the_per_rpc_path_too(self):
        reports = run_experiment("serve", clients=10, ops=2, seed=3, dispatch="per-rpc")
        assert "dispatch=per-rpc" in reports[0]
        assert "safety verdict    OK" in reports[0]

    def test_serve_validation_becomes_an_experiment_error(self):
        with pytest.raises(ExperimentError):
            run_serve(clients=0)

    def test_serve_splits_writes_across_concurrent_writers(self):
        report = run_serve(
            clients=10, reads_per_client=2, seed=3, writers=3, keys=2,
            contention=0.5,
        )
        assert "writers=3" in report
        assert "contention=0.5" in report
        assert "safety verdict    OK" in report

    def test_contention_experiment_reports_the_grid_baseline(self):
        reports = run_experiment("contention", trials=2_000, seed=3)
        assert len(reports) == 1
        assert "grid baseline" in reports[0]
        assert "observed miss" in reports[0]
        assert "3 concurrent writers" in reports[0]

    def test_contention_experiment_writer_override(self):
        reports = run_experiment(
            "contention", trials=500, seed=3, writers=2, engine="batch"
        )
        assert "2 concurrent writers" in reports[0]

    def test_contention_validation(self):
        from repro.experiments.contention import run_contention

        with pytest.raises(ExperimentError):
            run_contention(writers=0)
        with pytest.raises(ExperimentError):
            run_contention(trials=0)
        with pytest.raises(ExperimentError):
            run_experiment("contention", engine="warp")

    def test_serve_latency_aware_deploys_the_byzantine_free_variant(self):
        # The spec layer refuses latency-aware + forgers, so serve swaps in
        # the crash-only variant of its scenario (and the clients warn about
        # the ε caveat).
        with pytest.warns(UserWarning, match="access strategy"):
            report = run_serve(clients=10, reads_per_client=2, selection="latency-aware")
        assert "selection=latency-aware" in report
        assert "random_crashes" in report
        assert "safety verdict    OK" in report

    def test_serve_refuses_latency_aware_with_an_explicit_byzantine_scenario(self):
        from repro.experiments.serve import serve_load_spec, serve_scenario

        with pytest.raises(Exception, match="latency-aware"):
            serve_load_spec(selection="latency-aware", scenario=serve_scenario())


class TestCli:
    def test_main_success(self, capsys):
        assert main(["--experiment", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out

    def test_main_figure_with_points(self, capsys):
        assert main(["--experiment", "figure1", "--points", "9"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_main_rejects_unknown_choice(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "bogus"])

    def test_main_consistency_with_engine_and_seed(self, capsys):
        assert (
            main(
                [
                    "--experiment", "consistency",
                    "--engine", "batch",
                    "--seed", "7",
                    "--trials", "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine=batch" in out and "seed=7" in out

    def test_main_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "consistency", "--engine", "warp"])

    def test_main_consistency_register_kind_flag(self, capsys):
        assert (
            main(
                [
                    "consistency",
                    "--engine", "sequential",
                    "--trials", "20",
                    "--register-kind", "write-back",
                ]
            )
            == 0
        )
        assert "register=write-back" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["consistency", "--register-kind", "warp"])

    def test_main_accepts_the_positional_spelling(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["serve", "--clients", "10", "--ops", "2"]) == 0
        assert "safety verdict" in capsys.readouterr().out

    def test_main_explore_reports_an_all_safe_grid(self, capsys):
        assert main(["explore"]) == 0
        out = capsys.readouterr().out
        assert "masking-forger" in out and "dissemination-crash" in out
        assert "SAFE" in out and "VIOLATION" not in out

    def test_main_contention_and_writer_flags(self, capsys):
        assert (
            main(["contention", "--trials", "500", "--writers", "2", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "2 concurrent writers" in out and "grid baseline" in out
        assert (
            main(
                ["serve", "--clients", "10", "--ops", "2", "--writers", "2",
                 "--keys", "2", "--contention", "1.0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "writers=2" in out and "contention=1.0" in out

    def test_main_serve_dispatch_and_selection_flags(self, capsys):
        assert (
            main(["serve", "--clients", "10", "--ops", "2", "--dispatch", "per-rpc"])
            == 0
        )
        assert "dispatch=per-rpc" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["serve", "--dispatch", "warp"])
        # Latency-aware swaps in the Byzantine-free scenario variant.
        with pytest.warns(UserWarning, match="access strategy"):
            code = main(
                ["serve", "--clients", "10", "--ops", "2", "--selection", "latency-aware"]
            )
        assert code == 0
        assert "selection=latency-aware" in capsys.readouterr().out

    def test_main_serve_observability_flags(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "traces.jsonl"
        metrics_file = tmp_path / "metrics.json"
        code = main(
            [
                "serve",
                "--clients",
                "10",
                "--ops",
                "2",
                "--trace-sample",
                "1.0",
                "--trace-out",
                str(trace_file),
                "--metrics-out",
                str(metrics_file),
                "--monitor-epsilon",
            ]
        )
        assert code == 0
        assert "sampled traces" in capsys.readouterr().out
        traces = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert traces and all("trace_id" in trace for trace in traces)
        document = json.loads(metrics_file.read_text())
        assert document["merged"]["counters"]["rpc_calls"] > 0
        assert document["epsilon_monitor"]["observed"] > 0

    def test_main_trace_out_implies_full_sampling(self, tmp_path, capsys):
        trace_file = tmp_path / "traces.jsonl"
        code = main(
            ["serve", "--clients", "10", "--ops", "2", "--trace-out", str(trace_file)]
        )
        assert code == 0
        capsys.readouterr()
        assert trace_file.read_text().strip()  # traces were sampled and dumped

    def test_main_rejects_conflicting_experiment_spellings(self):
        with pytest.raises(SystemExit):
            main(["table1", "--experiment", "table2"])

    def test_experiment_names_constant(self):
        assert "all" in EXPERIMENT_NAMES
        assert "consistency" in EXPERIMENT_NAMES
        assert "contention" in EXPERIMENT_NAMES
        assert "serve" in EXPERIMENT_NAMES
        assert "explore" in EXPERIMENT_NAMES
        assert ENGINE_NAMES == ("sequential", "batch")
        assert len(EXPERIMENT_NAMES) == 12
