"""Tests for the quorum system base classes and explicit systems."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, QuorumPropertyError
from repro.quorum.base import (
    ENUMERATION_LIMIT,
    ExplicitQuorumSystem,
    enumerate_subsets_of_size,
    sample_subset,
)


def simple_system():
    """A tiny intersecting system used throughout these tests."""
    return ExplicitQuorumSystem(5, [{0, 1, 2}, {2, 3, 4}, {0, 2, 4}])


class TestExplicitQuorumSystem:
    def test_basic_properties(self):
        system = simple_system()
        assert system.n == 5
        assert len(system) == 3
        assert system.min_quorum_size() == 3
        assert system.universe == frozenset(range(5))
        assert "Explicit" in system.describe()

    def test_rejects_non_intersecting(self):
        with pytest.raises(QuorumPropertyError):
            ExplicitQuorumSystem(4, [{0, 1}, {2, 3}])

    def test_validation_can_be_disabled(self):
        system = ExplicitQuorumSystem(4, [{0, 1}, {2, 3}], validate=False)
        assert len(system) == 2

    def test_rejects_empty_quorum(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(4, [{0, 1}, set()], validate=False)

    def test_rejects_out_of_universe(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(3, [{0, 5}])

    def test_rejects_empty_system(self):
        with pytest.raises(ConfigurationError):
            ExplicitQuorumSystem(3, [])

    def test_deduplicates_quorums(self):
        system = ExplicitQuorumSystem(4, [{0, 1}, {1, 0}, {1, 2}])
        assert len(system) == 2

    def test_enumeration(self):
        system = simple_system()
        quorums = list(system.enumerate_quorums())
        assert frozenset({0, 1, 2}) in quorums
        assert len(quorums) == 3
        assert system.is_enumerable()

    def test_sampling_stays_in_support(self, rng):
        system = simple_system()
        support = set(system.quorums)
        for _ in range(50):
            assert system.sample_quorum(rng) in support

    def test_find_live_quorum(self):
        system = simple_system()
        assert system.find_live_quorum({0, 1, 2, 3}) == frozenset({0, 1, 2})
        assert system.find_live_quorum({2, 3, 4}) == frozenset({2, 3, 4})
        assert system.find_live_quorum({0, 1, 3}) is None
        assert system.is_quorum_available({0, 2, 4})
        assert not system.is_quorum_available({1, 3})

    def test_measures_against_known_values(self):
        # The 3-quorum system over 5 servers: server 2 is in every quorum, so
        # the optimal load is 1 (server 2 is always hit) ... actually the LP
        # can do no better than 1 for server 2 since every quorum contains it.
        system = simple_system()
        assert system.load() == pytest.approx(1.0)
        # Killing server 2 alone disables every quorum.
        assert system.fault_tolerance() == 1

    def test_failure_probability_monotone(self):
        system = simple_system()
        low = system.failure_probability(0.1, trials=4000, seed=1)
        high = system.failure_probability(0.6, trials=4000, seed=1)
        assert low <= high

    def test_profile(self):
        profile = simple_system().profile()
        assert profile.n == 5
        assert profile.quorum_size == 3
        assert profile.epsilon == 0.0


class TestSubsetHelpers:
    def test_enumerate_subsets(self):
        subsets = list(enumerate_subsets_of_size(5, 2))
        assert len(subsets) == 10
        assert all(len(s) == 2 for s in subsets)

    def test_enumerate_refuses_explosion(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_subsets_of_size(200, 100))

    def test_enumerate_validates_size(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_subsets_of_size(5, 0))
        with pytest.raises(ConfigurationError):
            list(enumerate_subsets_of_size(5, 6))

    def test_sample_subset_size_and_range(self, rng):
        for _ in range(20):
            subset = sample_subset(30, 7, rng)
            assert len(subset) == 7
            assert subset <= frozenset(range(30))

    def test_sample_subset_validates(self):
        with pytest.raises(ConfigurationError):
            sample_subset(5, 6)

    @given(st.integers(min_value=1, max_value=40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_sample_subset_property(self, n, data):
        size = data.draw(st.integers(min_value=1, max_value=n))
        subset = sample_subset(n, size, random.Random(0))
        assert len(subset) == size
        assert all(0 <= s < n for s in subset)

    def test_enumeration_limit_is_reasonable(self):
        assert ENUMERATION_LIMIT >= 1_000_000
