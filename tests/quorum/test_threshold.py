"""Tests for majority and threshold quorum systems."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.failure_probability import threshold_failure_probability
from repro.exceptions import ConfigurationError
from repro.quorum.threshold import MajorityQuorumSystem, ThresholdQuorumSystem
from repro.quorum.verification import verify_intersection_property


class TestThresholdQuorumSystem:
    def test_basic_properties(self):
        system = ThresholdQuorumSystem(10, 6)
        assert system.n == 10
        assert system.quorum_size == 6
        assert system.min_quorum_size() == 6
        assert "Threshold" in system.describe()

    def test_requires_majority_size(self):
        with pytest.raises(ConfigurationError):
            ThresholdQuorumSystem(10, 5)

    def test_relaxed_mode_allows_small_quorums(self):
        system = ThresholdQuorumSystem(10, 3, require_intersection=False)
        assert system.quorum_size == 3

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            ThresholdQuorumSystem(10, 0, require_intersection=False)
        with pytest.raises(ConfigurationError):
            ThresholdQuorumSystem(10, 11)

    def test_enumerated_quorums_intersect(self):
        system = ThresholdQuorumSystem(7, 4)
        quorums = list(system.enumerate_quorums())
        assert len(quorums) == 35
        verify_intersection_property(quorums)

    def test_sampling_size(self, rng):
        system = ThresholdQuorumSystem(20, 11)
        for _ in range(25):
            assert len(system.sample_quorum(rng)) == 11

    def test_find_live_quorum(self):
        system = ThresholdQuorumSystem(10, 6)
        assert system.find_live_quorum(set(range(10))) is not None
        assert system.find_live_quorum(set(range(6))) == frozenset(range(6))
        assert system.find_live_quorum(set(range(5))) is None

    def test_load_and_fault_tolerance(self):
        system = ThresholdQuorumSystem(100, 51)
        assert system.load() == pytest.approx(0.51)
        assert system.fault_tolerance() == 50

    def test_failure_probability_delegates_to_exact_formula(self):
        system = ThresholdQuorumSystem(40, 21)
        for p in (0.1, 0.5, 0.9):
            assert system.failure_probability(p) == pytest.approx(
                threshold_failure_probability(40, 21, p)
            )

    def test_profile(self):
        profile = ThresholdQuorumSystem(30, 16).profile()
        assert profile.quorum_size == 16
        assert profile.fault_tolerance == 15

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_majority_invariants(self, n):
        system = MajorityQuorumSystem(n)
        # Quorum size is ceil((n+1)/2) and quorums always intersect.
        assert system.quorum_size == n // 2 + 1
        assert 2 * system.quorum_size > n
        # The load / fault-tolerance trade-off of strict systems:
        # A(Q) <= n * L(Q) (Section 2.2).
        assert system.fault_tolerance() <= n * system.load() + 1e-9


class TestMajorityQuorumSystem:
    def test_paper_table2_threshold_column(self):
        # Table 2's "Threshold" quorum sizes: ceil((n+1)/2).
        expected = {25: 13, 100: 51, 225: 113, 400: 201, 625: 313, 900: 451}
        for n, size in expected.items():
            assert MajorityQuorumSystem(n).quorum_size == size

    def test_describe_mentions_majority(self):
        assert "Majority" in MajorityQuorumSystem(9).describe()

    def test_odd_n_fault_tolerance_equals_quorum_size(self):
        # For odd n, A(Q) = n - m + 1 = m (the values printed in Table 2).
        for n in (25, 225, 625):
            system = MajorityQuorumSystem(n)
            assert system.fault_tolerance() == system.quorum_size

    def test_even_n_fault_tolerance(self):
        system = MajorityQuorumSystem(100)
        assert system.fault_tolerance() == 50
