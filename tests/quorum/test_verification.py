"""Tests for quorum property verification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QuorumPropertyError
from repro.quorum.verification import (
    check_dissemination_property,
    check_intersection_property,
    check_masking_property,
    classify_overlap,
    find_violating_pair,
    minimum_pairwise_overlap,
    verify_dissemination_property,
    verify_intersection_property,
    verify_masking_property,
)


class TestOverlapComputation:
    def test_minimum_overlap(self):
        quorums = [{0, 1, 2, 3}, {2, 3, 4, 5}, {3, 4, 5, 6}]
        assert minimum_pairwise_overlap(quorums) == 1  # {0,1,2,3} vs {3,4,5,6}

    def test_single_quorum_overlap_is_its_size(self):
        assert minimum_pairwise_overlap([{0, 1, 2}]) == 3

    def test_empty_family_rejected(self):
        with pytest.raises(QuorumPropertyError):
            minimum_pairwise_overlap([])

    def test_empty_quorum_rejected(self):
        with pytest.raises(QuorumPropertyError):
            minimum_pairwise_overlap([{0}, set()])

    def test_find_violating_pair(self):
        quorums = [{0, 1}, {1, 2}, {3, 4}]
        pair = find_violating_pair(quorums, 1)
        assert pair is not None
        first, second = pair
        assert not (first & second)
        assert find_violating_pair([{0, 1}, {1, 2}], 1) is None


class TestVerifiers:
    def test_intersection_passes_and_fails(self):
        verify_intersection_property([{0, 1}, {1, 2}])
        with pytest.raises(QuorumPropertyError):
            verify_intersection_property([{0, 1}, {2, 3}])
        assert check_intersection_property([{0, 1}, {1, 2}])
        assert not check_intersection_property([{0, 1}, {2, 3}])

    def test_dissemination_requires_b_plus_one(self):
        quorums = [{0, 1, 2}, {1, 2, 3}]
        verify_dissemination_property(quorums, 1)  # overlap 2 >= 2
        with pytest.raises(QuorumPropertyError):
            verify_dissemination_property(quorums, 2)  # needs overlap 3
        assert check_dissemination_property(quorums, 1)
        assert not check_dissemination_property(quorums, 2)

    def test_masking_requires_two_b_plus_one(self):
        quorums = [{0, 1, 2, 3, 4}, {2, 3, 4, 5, 6}]
        verify_masking_property(quorums, 1)  # overlap 3 >= 3
        with pytest.raises(QuorumPropertyError):
            verify_masking_property(quorums, 2)  # needs overlap 5
        assert check_masking_property(quorums, 1)
        assert not check_masking_property(quorums, 2)

    def test_negative_b_rejected(self):
        with pytest.raises(QuorumPropertyError):
            verify_dissemination_property([{0}], -1)
        with pytest.raises(QuorumPropertyError):
            verify_masking_property([{0}], -1)


class TestClassifyOverlap:
    def test_classification_of_strict_system(self):
        quorums = [{0, 1, 2, 3, 4}, {2, 3, 4, 5, 6}, {0, 2, 3, 4, 6}]
        info = classify_overlap(quorums)
        assert info["is_strict"]
        assert info["min_overlap"] == 3
        assert info["max_dissemination_b"] == 2
        assert info["max_masking_b"] == 1

    def test_classification_of_non_intersecting_system(self):
        info = classify_overlap([{0, 1}, {2, 3}])
        assert not info["is_strict"]
        assert info["min_overlap"] == 0
        assert info["max_dissemination_b"] == -1

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), min_size=1, max_size=6),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_consistent_with_checks(self, quorums):
        info = classify_overlap(quorums)
        assert info["is_strict"] == check_intersection_property(quorums)
        # With a single quorum every pairwise condition is vacuous, so the
        # "b + 1 fails" half only makes sense for families of two or more.
        multiple = len(set(map(frozenset, quorums))) >= 2
        if info["max_dissemination_b"] >= 1:
            assert check_dissemination_property(quorums, info["max_dissemination_b"])
            if multiple:
                assert not check_dissemination_property(quorums, info["max_dissemination_b"] + 1)
        if info["max_masking_b"] >= 1:
            assert check_masking_property(quorums, info["max_masking_b"])
            if multiple:
                assert not check_masking_property(quorums, info["max_masking_b"] + 1)
