"""Tests for strict b-dissemination and b-masking threshold systems."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.quorum.byzantine import (
    ThresholdDisseminationQuorumSystem,
    ThresholdMaskingQuorumSystem,
    dissemination_quorum_size,
    masking_quorum_size,
    max_dissemination_threshold,
    max_masking_threshold,
)
from repro.quorum.verification import (
    minimum_pairwise_overlap,
    verify_dissemination_property,
    verify_masking_property,
)


class TestQuorumSizeFormulas:
    def test_paper_table3_threshold_column(self):
        expected = {25: (2, 14), 100: (4, 53), 400: (9, 205), 625: (12, 319), 900: (14, 458)}
        for n, (b, size) in expected.items():
            assert dissemination_quorum_size(n, b) == size

    def test_paper_table4_threshold_column(self):
        expected = {
            25: (2, 15),
            100: (4, 55),
            225: (7, 120),
            400: (9, 210),
            625: (12, 325),
            900: (14, 465),
        }
        for n, (b, size) in expected.items():
            assert masking_quorum_size(n, b) == size

    def test_resilience_ceilings(self):
        assert max_dissemination_threshold(100) == 33
        assert max_masking_threshold(100) == 24
        assert max_dissemination_threshold(4) == 1
        assert max_masking_threshold(5) == 1


class TestThresholdDissemination:
    def test_overlap_guarantee(self):
        system = ThresholdDisseminationQuorumSystem(10, 2)
        assert system.min_overlap() >= 3
        quorums = list(system.enumerate_quorums())
        verify_dissemination_property(quorums, 2)

    def test_rejects_excessive_b(self):
        with pytest.raises(ConfigurationError):
            ThresholdDisseminationQuorumSystem(10, 4)  # limit is (10-1)//3 = 3
        with pytest.raises(ConfigurationError):
            ThresholdDisseminationQuorumSystem(10, 0)

    def test_byzantine_threshold_attribute(self):
        system = ThresholdDisseminationQuorumSystem(100, 20)
        assert system.byzantine_threshold == 20
        assert system.profile().byzantine_threshold == 20

    def test_load_exceeds_two_thirds_at_max_resilience(self):
        # Section 1.3: at b ~ n/3 the strict dissemination load is >= 2/3.
        n = 100
        b = max_dissemination_threshold(n)
        system = ThresholdDisseminationQuorumSystem(n, b)
        assert system.load() >= 2.0 / 3.0 - 1e-9

    @given(st.integers(min_value=4, max_value=150))
    @settings(max_examples=50, deadline=None)
    def test_overlap_always_sufficient(self, n):
        limit = max_dissemination_threshold(n)
        if limit < 1:
            return
        b = limit
        system = ThresholdDisseminationQuorumSystem(n, b)
        # Pairwise overlap of two quorums of size m is at least 2m - n >= b + 1.
        assert 2 * system.quorum_size - n >= b + 1

    def test_describe(self):
        assert "ThresholdDissemination" in ThresholdDisseminationQuorumSystem(10, 2).describe()


class TestThresholdMasking:
    def test_overlap_guarantee(self):
        system = ThresholdMaskingQuorumSystem(13, 2)
        assert system.min_overlap() >= 5
        quorums = list(system.enumerate_quorums())
        verify_masking_property(quorums, 2)

    def test_rejects_excessive_b(self):
        with pytest.raises(ConfigurationError):
            ThresholdMaskingQuorumSystem(10, 3)  # limit is (10-1)//4 = 2
        with pytest.raises(ConfigurationError):
            ThresholdMaskingQuorumSystem(10, 0)

    def test_fault_tolerance_drops_with_b(self):
        lighter = ThresholdMaskingQuorumSystem(100, 4)
        heavier = ThresholdMaskingQuorumSystem(100, 20)
        assert heavier.fault_tolerance() < lighter.fault_tolerance()

    def test_load_lower_bound_of_table1_holds(self):
        # L(Q) >= sqrt((2b+1)/n) for strict masking systems.
        n, b = 400, 9
        system = ThresholdMaskingQuorumSystem(n, b)
        assert system.load() >= math.sqrt((2 * b + 1) / n) - 1e-9

    @given(st.integers(min_value=5, max_value=150))
    @settings(max_examples=50, deadline=None)
    def test_overlap_always_sufficient(self, n):
        limit = max_masking_threshold(n)
        if limit < 1:
            return
        b = limit
        system = ThresholdMaskingQuorumSystem(n, b)
        assert 2 * system.quorum_size - n >= 2 * b + 1

    def test_describe(self):
        assert "ThresholdMasking" in ThresholdMaskingQuorumSystem(13, 2).describe()
