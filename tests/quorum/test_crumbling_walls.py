"""Tests for crumbling-wall quorum systems."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.quorum.crumbling_walls import CrumblingWallQuorumSystem, near_square_row_widths
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.measures import fault_tolerance_exact, optimal_load
from repro.quorum.verification import verify_intersection_property


class TestLayout:
    def test_near_square_widths_cover_universe(self):
        for n in (1, 5, 25, 40, 100, 137):
            widths = near_square_row_widths(n)
            assert sum(widths) == n
            assert all(w >= 1 for w in widths)

    def test_invalid_layouts(self):
        with pytest.raises(ConfigurationError):
            CrumblingWallQuorumSystem([])
        with pytest.raises(ConfigurationError):
            CrumblingWallQuorumSystem([3, 0, 2])
        with pytest.raises(ConfigurationError):
            CrumblingWallQuorumSystem([3, 3], n=7)
        with pytest.raises(ConfigurationError):
            CrumblingWallQuorumSystem(None, n=None)
        with pytest.raises(ConfigurationError):
            near_square_row_widths(0)

    def test_rows_partition_the_universe(self):
        wall = CrumblingWallQuorumSystem([3, 4, 2])
        assert wall.n == 9
        union = frozenset().union(*wall.rows)
        assert union == frozenset(range(9))
        assert wall.row_of(0) == 0
        assert wall.row_of(5) == 1
        assert wall.row_of(8) == 2


class TestQuorumStructure:
    def test_quorums_intersect(self):
        wall = CrumblingWallQuorumSystem([2, 3, 2])
        quorums = list(wall.enumerate_quorums())
        assert quorums
        verify_intersection_property(quorums)

    def test_quorum_for_validation(self):
        wall = CrumblingWallQuorumSystem([2, 3, 2])
        with pytest.raises(ConfigurationError):
            wall.quorum_for(0, [2])  # needs two representatives
        with pytest.raises(ConfigurationError):
            wall.quorum_for(0, [0, 7])  # 0 is not in a lower row
        with pytest.raises(ConfigurationError):
            wall.quorum_for(5, [])

    def test_min_quorum_size(self):
        # widths [2,3,2]: full row 0 + 2 reps = 4; row 1 + 1 = 4; row 2 alone = 2.
        wall = CrumblingWallQuorumSystem([2, 3, 2])
        assert wall.min_quorum_size() == 2

    def test_sampled_quorums_are_quorums(self, rng):
        wall = CrumblingWallQuorumSystem([3, 3, 3])
        enumerated = set(wall.enumerate_quorums())
        for _ in range(30):
            assert wall.sample_quorum(rng) in enumerated

    def test_find_live_quorum(self):
        wall = CrumblingWallQuorumSystem([3, 3, 3])
        assert wall.find_live_quorum(set(range(9))) is not None
        # Crash one server per row: no full row survives.
        assert wall.find_live_quorum(set(range(9)) - {0, 3, 6}) is None
        # Crash a whole middle row only: the bottom row alone is still a quorum.
        live = set(range(9)) - {3, 4, 5}
        quorum = wall.find_live_quorum(live)
        assert quorum is not None and quorum <= live


class TestMeasures:
    def test_fault_tolerance_matches_exact_transversal(self):
        for widths in ([2, 3, 2], [3, 3, 3], [1, 4, 4], [4, 3], [5]):
            wall = CrumblingWallQuorumSystem(widths)
            quorums = list(wall.enumerate_quorums())
            assert wall.fault_tolerance() == fault_tolerance_exact(quorums, wall.n)

    def test_load_close_to_lp_optimum_for_square_wall(self):
        wall = CrumblingWallQuorumSystem([3, 3, 3])
        quorums = list(wall.enumerate_quorums())
        lp = optimal_load(quorums, wall.n)
        # The simple uniform-row strategy is within a small factor of optimal.
        assert lp <= wall.load() <= 2.5 * lp

    def test_load_comparable_to_grid(self):
        n = 100
        wall = CrumblingWallQuorumSystem(n=n)
        grid = GridQuorumSystem(n)
        assert wall.load() < 3 * grid.load()
        assert wall.min_quorum_size() <= grid.min_quorum_size() + 2

    def test_failure_probability_monotone(self):
        wall = CrumblingWallQuorumSystem(n=25)
        low = wall.failure_probability(0.05, trials=3000, seed=1)
        high = wall.failure_probability(0.5, trials=3000, seed=1)
        assert 0.0 <= low <= high <= 1.0
        with pytest.raises(ConfigurationError):
            wall.failure_probability(1.5)

    def test_describe(self):
        assert "CrumblingWall" in CrumblingWallQuorumSystem([2, 2]).describe()

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_fault_tolerance_formula_property(self, widths):
        wall = CrumblingWallQuorumSystem(widths)
        quorums = list(wall.enumerate_quorums())
        assert wall.fault_tolerance() == fault_tolerance_exact(quorums, wall.n)
