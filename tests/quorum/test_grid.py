"""Tests for grid quorum systems and their Byzantine variants."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.quorum.grid import (
    ByzantineGridQuorumSystem,
    GridDisseminationQuorumSystem,
    GridMaskingQuorumSystem,
    GridQuorumSystem,
)
from repro.quorum.verification import (
    minimum_pairwise_overlap,
    verify_dissemination_property,
    verify_intersection_property,
    verify_masking_property,
)


class TestGridQuorumSystem:
    def test_requires_perfect_square(self):
        with pytest.raises(ConfigurationError):
            GridQuorumSystem(20)

    def test_layout(self):
        grid = GridQuorumSystem(9)
        assert grid.side == 3
        assert grid.row(0) == frozenset({0, 1, 2})
        assert grid.column(0) == frozenset({0, 3, 6})
        assert grid.quorum_for(1, 2) == frozenset({3, 4, 5, 2, 8})

    def test_row_column_validation(self):
        grid = GridQuorumSystem(9)
        with pytest.raises(ConfigurationError):
            grid.row(3)
        with pytest.raises(ConfigurationError):
            grid.column(-1)

    def test_quorum_size(self):
        for n in (25, 100, 225):
            grid = GridQuorumSystem(n)
            assert grid.min_quorum_size() == 2 * math.isqrt(n) - 1

    def test_paper_table2_grid_column(self):
        # Table 2's grid quorum sizes and fault tolerances.
        expected = {
            25: (9, 5),
            100: (19, 10),
            225: (29, 15),
            400: (39, 20),
            625: (49, 25),
            900: (59, 30),
        }
        for n, (size, ft) in expected.items():
            grid = GridQuorumSystem(n)
            assert grid.min_quorum_size() == size
            assert grid.fault_tolerance() == ft

    def test_enumerated_quorums_intersect(self):
        grid = GridQuorumSystem(16)
        quorums = list(grid.enumerate_quorums())
        assert len(quorums) == 16
        verify_intersection_property(quorums)

    def test_sampling(self, rng):
        grid = GridQuorumSystem(25)
        for _ in range(20):
            quorum = grid.sample_quorum(rng)
            assert len(quorum) == 9

    def test_find_live_quorum(self):
        grid = GridQuorumSystem(9)
        assert grid.find_live_quorum(set(range(9))) is not None
        # Kill one full row: no quorum survives.
        alive = set(range(9)) - grid.row(1)
        assert grid.find_live_quorum(alive) is None
        # Kill a partial row: row 0 and some column survive.
        alive = set(range(9)) - {4}
        quorum = grid.find_live_quorum(alive)
        assert quorum is not None and quorum <= alive

    def test_load(self):
        grid = GridQuorumSystem(100)
        assert grid.load() == pytest.approx(19 / 100)

    def test_failure_probability_boundaries(self):
        grid = GridQuorumSystem(25)
        assert grid.failure_probability(0.0) == 0.0
        assert grid.failure_probability(1.0) == 1.0


class TestByzantineGrids:
    def test_dissemination_rows_per_quorum(self):
        # r = ceil(sqrt((b+1)/2)).
        assert GridDisseminationQuorumSystem(25, 2).rows_per_quorum == 2
        assert GridDisseminationQuorumSystem(400, 9).rows_per_quorum == 3

    def test_masking_rows_per_quorum(self):
        # r = ceil(sqrt((2b+1)/2)).
        assert GridMaskingQuorumSystem(25, 2).rows_per_quorum == 2
        assert GridMaskingQuorumSystem(100, 4).rows_per_quorum == 3

    def test_paper_table3_grid_column(self):
        expected = {25: 16, 100: 36, 225: 56, 400: 111, 625: 141, 900: 171}
        for n, size in expected.items():
            b = int((math.isqrt(n) - 1) // 2)
            assert GridDisseminationQuorumSystem(n, b).min_quorum_size() == size

    def test_paper_table4_grid_column(self):
        expected = {25: 16, 100: 51, 225: 81, 400: 144, 625: 184, 900: 224}
        for n, size in expected.items():
            b = int((math.isqrt(n) - 1) // 2)
            assert GridMaskingQuorumSystem(n, b).min_quorum_size() == size

    def test_dissemination_overlap_property(self):
        b = 2
        grid = GridDisseminationQuorumSystem(25, b)
        quorums = list(grid.enumerate_quorums())
        verify_dissemination_property(quorums, b)
        assert minimum_pairwise_overlap(quorums) >= b + 1

    def test_masking_overlap_property(self):
        b = 2
        grid = GridMaskingQuorumSystem(25, b)
        quorums = list(grid.enumerate_quorums())
        verify_masking_property(quorums, b)
        assert minimum_pairwise_overlap(quorums) >= 2 * b + 1

    def test_fault_tolerance_is_one_row(self):
        assert GridDisseminationQuorumSystem(100, 4).fault_tolerance() == 10
        assert GridMaskingQuorumSystem(100, 4).fault_tolerance() == 10

    def test_sampling_and_live_quorum(self, rng):
        grid = GridMaskingQuorumSystem(25, 2)
        quorum = grid.sample_quorum(rng)
        assert len(quorum) == grid.min_quorum_size()
        assert grid.find_live_quorum(set(range(25))) is not None
        # Remove one full row: with r=2 rows needed out of 5, still available.
        alive = set(range(25)) - grid.row(0)
        assert grid.find_live_quorum(alive) is None or grid.rows_per_quorum <= 4
        # Removing 4 rows leaves only 1 complete row < r=2.
        alive = set(grid.row(0))
        assert grid.find_live_quorum(alive) is None

    def test_quorum_for_sets_validation(self):
        grid = GridMaskingQuorumSystem(25, 2)
        with pytest.raises(ConfigurationError):
            grid.quorum_for_sets([0], [1, 2])

    def test_rejects_excessive_b(self):
        with pytest.raises(ConfigurationError):
            GridDisseminationQuorumSystem(25, 0)
        with pytest.raises(ConfigurationError):
            GridMaskingQuorumSystem(25, 40)

    def test_byzantine_grid_validation(self):
        with pytest.raises(ConfigurationError):
            ByzantineGridQuorumSystem(25, 0, 1)
        with pytest.raises(ConfigurationError):
            ByzantineGridQuorumSystem(25, 6, 1)
        with pytest.raises(ConfigurationError):
            ByzantineGridQuorumSystem(25, 2, -1)

    def test_monte_carlo_failure_probability_bounds(self):
        grid = GridDisseminationQuorumSystem(25, 2)
        low = grid.failure_probability(0.05, trials=3000, seed=2)
        high = grid.failure_probability(0.5, trials=3000, seed=2)
        assert 0.0 <= low <= high <= 1.0
