"""Tests for the exact strict measures (LP load, minimum hitting set)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, StrategyError
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.measures import (
    fault_tolerance_exact,
    load_of_strategy,
    minimum_hitting_set,
    optimal_load,
    optimal_strategy,
    per_server_loads,
)


def threshold_quorums(n, m):
    return [frozenset(c) for c in itertools.combinations(range(n), m)]


class TestLoadOfStrategy:
    def test_uniform_majority_load(self):
        quorums = threshold_quorums(5, 3)
        weights = [1.0 / len(quorums)] * len(quorums)
        assert load_of_strategy(quorums, weights, 5) == pytest.approx(0.6)

    def test_skewed_strategy_increases_load(self):
        quorums = [frozenset({0, 1, 2}), frozenset({2, 3, 4})]
        assert load_of_strategy(quorums, [1.0, 0.0], 5) == pytest.approx(1.0)
        assert load_of_strategy(quorums, [0.5, 0.5], 5) == pytest.approx(1.0)  # server 2

    def test_validation(self):
        quorums = [frozenset({0, 1})]
        with pytest.raises(StrategyError):
            load_of_strategy(quorums, [0.5, 0.5], 3)
        with pytest.raises(StrategyError):
            load_of_strategy(quorums, [0.5], 3)
        with pytest.raises(StrategyError):
            load_of_strategy(quorums, [-1.0], 3)
        with pytest.raises(ConfigurationError):
            load_of_strategy([], [], 3)
        with pytest.raises(ConfigurationError):
            load_of_strategy([frozenset({5})], [1.0], 3)

    def test_per_server_loads(self):
        quorums = [frozenset({0, 1}), frozenset({1, 2})]
        loads = per_server_loads(quorums, [0.5, 0.5], 3)
        assert loads == pytest.approx([0.5, 1.0, 0.5])


class TestOptimalLoad:
    def test_majority_threshold_is_m_over_n(self):
        # The LP should recover the known optimal load m/n of threshold systems.
        quorums = threshold_quorums(6, 4)
        assert optimal_load(quorums, 6) == pytest.approx(4 / 6, abs=1e-6)

    def test_grid_load(self):
        grid = GridQuorumSystem(9)
        quorums = list(grid.enumerate_quorums())
        assert optimal_load(quorums, 9) == pytest.approx(5 / 9, abs=1e-6)

    def test_singleton_load_is_one(self):
        assert optimal_load([frozenset({0})], 4) == pytest.approx(1.0, abs=1e-9)

    def test_naor_wool_lower_bound_respected(self):
        # L(Q) >= max(1/c(Q), c(Q)/n) for every strict system.
        quorums = [frozenset({0, 1, 2}), frozenset({2, 3, 4}), frozenset({0, 2, 4})]
        load = optimal_load(quorums, 5)
        c = min(len(q) for q in quorums)
        assert load >= max(1.0 / c, c / 5.0) - 1e-9

    def test_optimal_strategy_achieves_reported_load(self):
        quorums = threshold_quorums(5, 3)
        weights, load = optimal_strategy(quorums, 5)
        assert sum(weights) == pytest.approx(1.0)
        assert load_of_strategy(quorums, weights, 5) == pytest.approx(load, abs=1e-6)

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_load([], 4)
        with pytest.raises(ConfigurationError):
            optimal_strategy([], 4)


class TestMinimumHittingSet:
    def test_simple_cases(self):
        assert minimum_hitting_set([]) == frozenset()
        assert minimum_hitting_set([frozenset({3})]) == frozenset({3})

    def test_common_element(self):
        sets = [frozenset({0, 1}), frozenset({0, 2}), frozenset({0, 3})]
        assert minimum_hitting_set(sets) == frozenset({0})

    def test_disjoint_sets_need_one_each(self):
        sets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})]
        hitting = minimum_hitting_set(sets)
        assert len(hitting) == 3
        assert all(hitting & s for s in sets)

    def test_greedy_is_not_blindly_trusted(self):
        # A case where pure greedy can be led astray but branch and bound
        # still finds an optimal transversal of size 2.
        sets = [
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 3}),
            frozenset({2, 3}),
        ]
        hitting = minimum_hitting_set(sets)
        assert len(hitting) == 2
        assert all(hitting & s for s in sets)

    def test_rejects_empty_member(self):
        with pytest.raises(ConfigurationError):
            minimum_hitting_set([frozenset()])

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, sets):
        hitting = minimum_hitting_set(sets)
        assert all(hitting & s for s in sets)
        universe = sorted(set().union(*sets))
        # Brute-force the true optimum.
        best = None
        for size in range(0, len(universe) + 1):
            for combo in itertools.combinations(universe, size):
                candidate = frozenset(combo)
                if all(candidate & s for s in sets):
                    best = candidate
                    break
            if best is not None:
                break
        assert len(hitting) == len(best)


class TestFaultToleranceExact:
    def test_majority_fault_tolerance(self):
        quorums = threshold_quorums(5, 3)
        assert fault_tolerance_exact(quorums, 5) == 3

    def test_grid_fault_tolerance(self):
        grid = GridQuorumSystem(9)
        quorums = list(grid.enumerate_quorums())
        assert fault_tolerance_exact(quorums, 9) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fault_tolerance_exact([], 5)
        with pytest.raises(ConfigurationError):
            fault_tolerance_exact([frozenset({9})], 5)
