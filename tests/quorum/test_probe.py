"""Tests for adaptive probing (probe complexity)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.probe import (
    GreedyProbeStrategy,
    UniformProbeStrategy,
    expected_probes_uniform,
    oracle_from_alive_set,
)
from repro.quorum.threshold import MajorityQuorumSystem


class TestUniformProbeStrategy:
    def test_all_alive_uses_exactly_q_probes(self, rng):
        strategy = UniformProbeStrategy(50, 10)
        result = strategy.probe(oracle_from_alive_set(range(50)), rng)
        assert result.found
        assert len(result.quorum) == 10
        assert result.probes_used == 10

    def test_partial_liveness_assembles_live_quorum(self, rng):
        alive = set(range(0, 50, 2))  # 25 alive servers
        strategy = UniformProbeStrategy(50, 10)
        result = strategy.probe(oracle_from_alive_set(alive), rng)
        assert result.found
        assert result.quorum <= frozenset(alive)
        assert result.probes_used >= 10

    def test_not_enough_alive_servers(self, rng):
        strategy = UniformProbeStrategy(20, 10)
        result = strategy.probe(oracle_from_alive_set(range(5)), rng)
        assert not result.found
        assert result.quorum is None
        assert result.servers_alive == 5
        assert result.probes_used == 20

    def test_max_probes_cap(self, rng):
        strategy = UniformProbeStrategy(50, 10)
        result = strategy.probe(oracle_from_alive_set(range(50)), rng, max_probes=5)
        assert not result.found
        assert result.probes_used == 5

    def test_mean_probe_count_matches_expectation(self):
        n, q, alive_count = 60, 12, 40
        strategy = UniformProbeStrategy(n, q)
        alive = set(range(alive_count))
        oracle = oracle_from_alive_set(alive)
        rng = random.Random(7)
        trials = 800
        mean = sum(strategy.probe(oracle, rng).probes_used for _ in range(trials)) / trials
        assert mean == pytest.approx(expected_probes_uniform(n, q, alive_count), rel=0.08)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformProbeStrategy(0, 1)
        with pytest.raises(ConfigurationError):
            UniformProbeStrategy(10, 11)

    @given(st.integers(min_value=2, max_value=60), st.data())
    @settings(max_examples=40, deadline=None)
    def test_probe_count_bounds(self, n, data):
        q = data.draw(st.integers(min_value=1, max_value=n))
        alive_count = data.draw(st.integers(min_value=0, max_value=n))
        strategy = UniformProbeStrategy(n, q)
        result = strategy.probe(
            oracle_from_alive_set(range(alive_count)), random.Random(0)
        )
        assert result.found == (alive_count >= q)
        assert q <= result.probes_used <= n or not result.found


class TestExpectedProbes:
    def test_all_alive(self):
        # With every server alive, expectation is q (n+1)/(n+1) = q.
        assert expected_probes_uniform(50, 10, 50) == pytest.approx(10.0, rel=0.02)

    def test_half_alive_roughly_doubles(self):
        assert expected_probes_uniform(100, 10, 50) == pytest.approx(
            2 * expected_probes_uniform(100, 10, 101 - 1) , rel=0.05
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_probes_uniform(10, 5, 3)
        with pytest.raises(ConfigurationError):
            expected_probes_uniform(10, 0, 5)
        with pytest.raises(ConfigurationError):
            expected_probes_uniform(10, 5, 11)


class TestGreedyProbeStrategy:
    def test_finds_grid_quorum_with_few_probes(self):
        grid = GridQuorumSystem(25)
        strategy = GreedyProbeStrategy(grid)
        result = strategy.probe(oracle_from_alive_set(range(25)))
        assert result.found
        # One row plus one column is 9 servers; an adaptive prober should not
        # need to touch the whole universe.
        assert result.probes_used < 25

    def test_respects_custom_priority(self):
        majority = MajorityQuorumSystem(9)
        priority = list(range(9))
        strategy = GreedyProbeStrategy(majority, priority=priority)
        result = strategy.probe(oracle_from_alive_set(range(9)))
        assert result.found
        assert result.probes_used == majority.quorum_size
        assert result.quorum == frozenset(range(majority.quorum_size))

    def test_dead_row_forces_more_probes_or_failure(self):
        grid = GridQuorumSystem(9)
        # Kill one full row: no quorum exists, so probing must fail after
        # touching every server.
        alive = set(range(9)) - grid.row(0)
        strategy = GreedyProbeStrategy(grid)
        result = strategy.probe(oracle_from_alive_set(alive))
        assert not result.found
        assert result.probes_used == 9

    def test_max_probes_cap(self):
        grid = GridQuorumSystem(25)
        strategy = GreedyProbeStrategy(grid)
        result = strategy.probe(oracle_from_alive_set(range(25)), max_probes=3)
        assert not result.found
        assert result.probes_used == 3

    def test_invalid_priority_rejected(self):
        grid = GridQuorumSystem(9)
        with pytest.raises(ConfigurationError):
            GreedyProbeStrategy(grid, priority=[0, 1, 2])
        with pytest.raises(ConfigurationError):
            GreedyProbeStrategy(grid, priority=[0] * 9)


class TestProbeProperties:
    """Hypothesis property tests for the adaptive probing strategies."""

    @given(
        st.sampled_from([4, 9, 16, 25]),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_terminates_and_finds_a_quorum_iff_one_exists(self, n, data):
        # Completeness: over any alive set, greedy probing (bounded by one
        # pass over the priority permutation, so it always terminates) must
        # assemble a live quorum exactly when the system says one exists.
        system = data.draw(
            st.sampled_from([GridQuorumSystem(n), MajorityQuorumSystem(n)])
        )
        alive = data.draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
        strategy = GreedyProbeStrategy(system)
        result = strategy.probe(oracle_from_alive_set(alive))
        assert result.probes_used <= n  # termination, in probes
        assert result.found == (system.find_live_quorum(alive) is not None)
        if result.found:
            assert result.quorum <= frozenset(alive)
            # What came back really is a quorum: restricted to exactly those
            # servers, the system still finds one.
            assert system.find_live_quorum(set(result.quorum)) is not None
        else:
            # Nothing was missed: every alive server got probed.
            assert result.servers_alive == len(alive)

    @given(
        st.integers(min_value=5, max_value=40),
        st.data(),
    )
    @settings(max_examples=12, deadline=None)
    def test_uniform_probe_counts_match_expectation(self, n, data):
        # The empirical mean probe count must track the negative-
        # hypergeometric expectation q (n+1)/(a+1) within five standard
        # errors (a CLT bound, so the test is deterministic per seed and
        # holds with overwhelming margin for any drawn configuration).
        quorum_size = data.draw(st.integers(min_value=1, max_value=n))
        alive_count = data.draw(st.integers(min_value=quorum_size, max_value=n))
        strategy = UniformProbeStrategy(n, quorum_size)
        oracle = oracle_from_alive_set(range(alive_count))
        rng = random.Random(1234)
        trials = 300
        counts = [strategy.probe(oracle, rng).probes_used for _ in range(trials)]
        mean = sum(counts) / trials
        variance = sum((count - mean) ** 2 for count in counts) / max(1, trials - 1)
        standard_error = (variance / trials) ** 0.5
        expected = expected_probes_uniform(n, quorum_size, alive_count)
        assert abs(mean - expected) <= 5 * standard_error + 1e-9
