"""Tests for the singleton and weighted-voting quorum systems."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.quorum.singleton import SingletonQuorumSystem
from repro.quorum.threshold import MajorityQuorumSystem
from repro.quorum.verification import verify_intersection_property
from repro.quorum.weighted_voting import WeightedVotingQuorumSystem


class TestSingleton:
    def test_basic_properties(self):
        system = SingletonQuorumSystem(10, leader=3)
        assert system.leader == 3
        assert system.min_quorum_size() == 1
        assert list(system.enumerate_quorums()) == [frozenset({3})]
        assert system.load() == 1.0
        assert system.fault_tolerance() == 1

    def test_failure_probability_is_p(self):
        system = SingletonQuorumSystem(5)
        assert system.failure_probability(0.42) == 0.42
        with pytest.raises(ConfigurationError):
            system.failure_probability(1.2)

    def test_find_live_quorum(self):
        system = SingletonQuorumSystem(5, leader=2)
        assert system.find_live_quorum({1, 2, 3}) == frozenset({2})
        assert system.find_live_quorum({0, 1}) is None

    def test_sample_is_constant(self, rng):
        system = SingletonQuorumSystem(5, leader=4)
        assert system.sample_quorum(rng) == frozenset({4})

    def test_leader_validation(self):
        with pytest.raises(ConfigurationError):
            SingletonQuorumSystem(5, leader=5)

    def test_best_strict_system_for_large_p(self):
        # For p >= 1/2 the singleton beats the majority system (footnote 3).
        singleton = SingletonQuorumSystem(25)
        majority = MajorityQuorumSystem(25)
        for p in (0.6, 0.8, 0.95):
            assert singleton.failure_probability(p) <= majority.failure_probability(p)


class TestWeightedVoting:
    def test_uniform_weights_reduce_to_majority(self):
        voting = WeightedVotingQuorumSystem([1] * 7)
        majority = MajorityQuorumSystem(7)
        assert voting.min_quorum_size() == majority.quorum_size
        assert voting.fault_tolerance() == majority.fault_tolerance()

    def test_dominant_server_behaves_like_singleton(self):
        # One server holds most of the votes: it alone forms a quorum.
        voting = WeightedVotingQuorumSystem([10, 1, 1, 1, 1])
        assert voting.min_quorum_size() == 1
        assert voting.is_quorum({0})
        assert not voting.is_quorum({1, 2, 3, 4})
        assert voting.fault_tolerance() == 1

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedVotingQuorumSystem([1, 1, 1, 1], threshold=2)  # 2T <= total
        with pytest.raises(ConfigurationError):
            WeightedVotingQuorumSystem([1, 1], threshold=3)
        with pytest.raises(ConfigurationError):
            WeightedVotingQuorumSystem([])
        with pytest.raises(ConfigurationError):
            WeightedVotingQuorumSystem([0, 0])
        with pytest.raises(ConfigurationError):
            WeightedVotingQuorumSystem([1, -1, 3])

    def test_votes_of_and_is_quorum(self):
        voting = WeightedVotingQuorumSystem([3, 2, 2, 1], threshold=5)
        assert voting.total_votes == 8
        assert voting.votes_of({0, 1}) == 5
        assert voting.is_quorum({0, 1})
        assert not voting.is_quorum({1, 2})

    def test_minimal_quorums_intersect(self):
        voting = WeightedVotingQuorumSystem([3, 2, 2, 1, 1], threshold=5)
        minimal = list(voting.minimal_quorums())
        assert minimal
        verify_intersection_property(minimal)
        # Minimality: removing any server breaks the quorum.
        for quorum in minimal:
            assert voting.is_quorum(quorum)
            for server in quorum:
                assert not voting.is_quorum(quorum - {server})

    def test_sample_quorum_is_minimal(self, rng):
        voting = WeightedVotingQuorumSystem([3, 2, 2, 1, 1], threshold=5)
        for _ in range(30):
            quorum = voting.sample_quorum(rng)
            assert voting.is_quorum(quorum)
            for server in quorum:
                assert not voting.is_quorum(quorum - {server})

    def test_find_live_quorum(self):
        voting = WeightedVotingQuorumSystem([3, 2, 2, 1], threshold=5)
        assert voting.find_live_quorum({0, 1}) is not None
        assert voting.find_live_quorum({3}) is None
        assert voting.find_live_quorum({1, 2, 3}) == frozenset({1, 2, 3})

    def test_fault_tolerance_targets_heavy_servers(self):
        voting = WeightedVotingQuorumSystem([5, 1, 1, 1, 1], threshold=5)
        # Crashing the 5-vote server leaves 4 < 5 votes: one crash suffices.
        assert voting.fault_tolerance() == 1

    def test_load_of_uniform_weights_close_to_majority(self):
        voting = WeightedVotingQuorumSystem([1] * 5)
        majority_load = MajorityQuorumSystem(5).load()
        assert voting.load() == pytest.approx(majority_load, abs=0.05)

    def test_failure_probability_monotone(self):
        voting = WeightedVotingQuorumSystem([2, 2, 1, 1, 1])
        low = voting.failure_probability(0.1, trials=4000, seed=3)
        high = voting.failure_probability(0.7, trials=4000, seed=3)
        assert low <= high
        with pytest.raises(ConfigurationError):
            voting.failure_probability(1.5)

    def test_describe(self):
        assert "WeightedVoting" in WeightedVotingQuorumSystem([1, 1, 1]).describe()
