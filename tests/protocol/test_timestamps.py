"""Tests for writer-local timestamps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.protocol.timestamps import Timestamp, TimestampGenerator


class TestTimestamp:
    def test_ordering_by_counter_then_writer(self):
        assert Timestamp(1, 0) < Timestamp(2, 0)
        assert Timestamp(2, 0) > Timestamp(1, 5)
        assert Timestamp(3, 1) < Timestamp(3, 2)
        assert Timestamp(3, 2) == Timestamp(3, 2)

    def test_hashable_and_usable_as_dict_key(self):
        values = {Timestamp(1, 0): "a", Timestamp(2, 0): "b"}
        assert values[Timestamp(1, 0)] == "a"

    def test_next(self):
        ts = Timestamp(4, 7)
        assert ts.next() == Timestamp(5, 7)

    def test_zero_and_forged(self):
        assert Timestamp.zero(3) == Timestamp(0, 3)
        forged = Timestamp.forged_maximum()
        assert forged > Timestamp(10**9, 10**6)

    def test_negative_counter_rejected(self):
        with pytest.raises(ProtocolError):
            Timestamp(-1, 0)

    def test_comparison_with_other_types(self):
        assert Timestamp(1, 0).__eq__("x") is NotImplemented
        assert Timestamp(1, 0).__lt__("x") is NotImplemented

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_total_order(self, c1, w1, c2, w2):
        a, b = Timestamp(c1, w1), Timestamp(c2, w2)
        assert (a < b) or (b < a) or (a == b)
        # Antisymmetry.
        assert not ((a < b) and (b < a))


class TestTimestampGenerator:
    def test_strictly_increasing(self):
        generator = TimestampGenerator(writer_id=2)
        previous = None
        for _ in range(100):
            current = generator.next()
            if previous is not None:
                assert current > previous
            assert current.writer_id == 2
            previous = current

    def test_last_issued(self):
        generator = TimestampGenerator(writer_id=1)
        assert generator.last_issued is None
        first = generator.next()
        assert generator.last_issued == first

    def test_observe_fast_forwards(self):
        generator = TimestampGenerator(writer_id=1)
        generator.observe(Timestamp(50, 9))
        assert generator.next().counter == 51

    def test_observe_never_rewinds(self):
        generator = TimestampGenerator(writer_id=1, start=100)
        generator.observe(Timestamp(10, 0))
        assert generator.next().counter == 101

    def test_negative_start_rejected(self):
        with pytest.raises(ProtocolError):
            TimestampGenerator(writer_id=0, start=-1)
