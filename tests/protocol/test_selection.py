"""Tests for the shared deterministic reply-selection rule."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.protocol.selection import select_credible_value, tiebreak_key
from repro.protocol.timestamps import Timestamp
from repro.simulation.server import StoredValue


def _replies(*entries):
    """Build a reply map from ``(server, value, counter)`` triples in order."""
    return {
        server: StoredValue(value=value, timestamp=Timestamp(counter))
        for server, value, counter in entries
    }


class TestSelectCredibleValue:
    def test_highest_timestamp_wins(self):
        replies = _replies((0, "old", 1), (1, "new", 2), (2, "old", 1))
        selected = select_credible_value(replies)
        assert selected.value == "new"
        assert selected.timestamp == Timestamp(2)
        assert selected.servers == frozenset({1})
        assert selected.votes == 1

    def test_empty_and_valueless_replies_yield_none(self):
        assert select_credible_value({}) is None
        silent = {0: StoredValue(value=None, timestamp=None)}
        assert select_credible_value(silent) is None

    def test_threshold_filters_candidates(self):
        # "new" has the highest timestamp but only one vote; with k=2 the
        # twice-vouched older value is the only candidate.
        replies = _replies((0, "old", 1), (1, "old", 1), (2, "new", 2))
        selected = select_credible_value(replies, threshold=2)
        assert selected.value == "old"
        assert selected.votes == 2
        assert select_credible_value(replies, threshold=3) is None
        with pytest.raises(ConfigurationError):
            select_credible_value(replies, threshold=0)

    def test_timestamp_tie_broken_by_vote_count(self):
        replies = _replies((0, "a", 5), (1, "b", 5), (2, "b", 5))
        selected = select_credible_value(replies)
        assert selected.value == "b"
        assert selected.votes == 2

    def test_exhausted_tie_broken_by_tiebreak_key(self):
        replies = _replies((0, "alpha", 5), (1, "beta", 5))
        selected = select_credible_value(replies)
        assert tiebreak_key("beta") > tiebreak_key("alpha")
        assert selected.value == "beta"

    def test_selection_is_independent_of_reply_order(self):
        # The PR 2 known gap: the old registers resolved ties by dict
        # iteration order.  Every insertion order must now pick one winner.
        entries = [(0, "a", 5), (1, "b", 5), (2, "c", 5), (3, "a", 4)]
        import itertools

        winners = set()
        for permutation in itertools.permutations(entries):
            selected = select_credible_value(_replies(*permutation))
            winners.add((selected.value, selected.timestamp, selected.servers))
        assert len(winners) == 1

    def test_unhashable_values_are_supported(self):
        # Grouping is by repr, so plain registers keep accepting list payloads.
        replies = {
            0: StoredValue(value=[1, 2], timestamp=Timestamp(3)),
            1: StoredValue(value=[1, 2], timestamp=Timestamp(3)),
        }
        selected = select_credible_value(replies, threshold=2)
        assert selected.value == [1, 2]
        assert selected.votes == 2
