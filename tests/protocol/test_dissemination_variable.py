"""Tests for the dissemination (self-verifying data) register protocol (Section 4)."""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.protocol.dissemination_variable import DisseminationRegister
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
)


def make_register(n=50, b=10, plan=None, seed=0, epsilon=1e-2):
    system = ProbabilisticDisseminationSystem.for_epsilon(n, b, epsilon)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    register = DisseminationRegister(
        system,
        cluster,
        signatures=SignatureScheme(b"election-key"),
        rng=random.Random(seed),
    )
    return system, cluster, register


class TestSignedWrites:
    def test_writes_carry_valid_signatures(self):
        _, cluster, register = make_register()
        outcome = register.write("value")
        for server_id in outcome.quorum:
            stored = cluster.server(server_id).storage.get("x")
            assert stored is not None
            assert register.signatures.verify("x", stored.value, stored.timestamp, stored.signature)

    def test_timestamps_increase(self):
        _, _, register = make_register()
        assert register.write("a").timestamp < register.write("b").timestamp


class TestByzantineReads:
    def test_forged_values_are_rejected(self):
        # Every Byzantine server fabricates a value with a huge timestamp; the
        # reader must never return it because the signature cannot verify.
        n, b = 50, 10
        plan = FailurePlan(
            byzantine={
                server: ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
                for server in range(b)
            }
        )
        _, _, register = make_register(n=n, b=b, plan=plan)
        register.write("honest")
        for _ in range(20):
            outcome = register.read()
            assert outcome.value != "FORGED"
        assert register.forged_replies_rejected > 0

    def test_silent_byzantine_servers_only_cause_staleness(self):
        n, b = 50, 10
        plan = FailurePlan(
            byzantine={server: ByzantineSilentBehavior() for server in range(b)}
        )
        _, _, register = make_register(n=n, b=b, plan=plan)
        write = register.write("honest")
        outcome = register.read()
        assert outcome.value in ("honest", None)
        if outcome.value == "honest":
            assert outcome.timestamp == write.timestamp

    def test_replay_attack_returns_old_but_valid_value(self):
        n, b = 50, 10
        plan = FailurePlan(
            byzantine={server: ByzantineReplayBehavior() for server in range(b)}
        )
        _, _, register = make_register(n=n, b=b, plan=plan)
        register.write("v1")
        register.write("v2")
        outcome = register.read()
        # The reply can be stale (v1) only if no correct up-to-date server was
        # hit, but it can never be a value that was never written.
        assert outcome.value in ("v1", "v2")

    def test_consistency_close_to_one_minus_epsilon(self):
        # Theorem 4.2 check: with b random Byzantine servers the read misses
        # the latest write with probability at most epsilon (up to MC noise).
        n, b, epsilon = 36, 6, 0.05
        system = ProbabilisticDisseminationSystem.for_epsilon(n, b, epsilon)
        scheme = SignatureScheme(b"key")
        misses = 0
        trials = 300
        for seed in range(trials):
            rng = random.Random(seed)
            plan = FailurePlan.random_byzantine(
                n,
                b,
                behavior_factory=lambda: ByzantineForgeBehavior(
                    "FORGED", Timestamp.forged_maximum()
                ),
                rng=rng,
            )
            cluster = Cluster(n, failure_plan=plan, seed=seed)
            register = DisseminationRegister(system, cluster, signatures=scheme, rng=rng)
            write = register.write("honest")
            outcome = register.read()
            if outcome.timestamp != write.timestamp or outcome.value != "honest":
                misses += 1
        assert misses / trials <= epsilon + 0.05
