"""Tests for the read-repair (write-back) register."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.protocol.variable import ProbabilisticRegister
from repro.protocol.write_back import WriteBackRegister
from repro.simulation.cluster import Cluster


def make_register(n=36, q=8, seed=0, cls=WriteBackRegister):
    system = UniformEpsilonIntersectingSystem(n, q)
    cluster = Cluster(n, seed=seed)
    return cls(system, cluster, rng=random.Random(seed)), cluster


class TestWriteBack:
    def test_read_returns_latest_and_counts_repairs(self):
        register, _ = make_register()
        register.write("v1")
        register.write("v2")
        outcome = register.read()
        assert outcome.value == "v2"
        assert register.write_backs_performed == 1

    def test_empty_reads_do_not_write_back(self):
        register, _ = make_register()
        outcome = register.read()
        assert outcome.is_empty
        assert register.write_backs_performed == 0

    def test_replica_count_grows_with_reads(self):
        register, _ = make_register()
        register.write("value")
        initial = register.replicas_holding_latest()
        for _ in range(5):
            register.read()
        assert register.replicas_holding_latest() > initial

    def test_replicas_holding_latest_before_any_write(self):
        register, _ = make_register()
        assert register.replicas_holding_latest() == 0

    def test_write_back_keeps_the_writers_timestamp(self):
        register, cluster = make_register()
        write = register.write("value")
        register.read()
        for server in cluster.servers:
            stored = server.storage.get("x")
            if stored is not None:
                assert stored.timestamp == write.timestamp

    def test_read_repair_reduces_future_misses(self):
        # With a loose construction, repeated plain reads keep the same miss
        # probability, while write-back reads make later reads progressively
        # safer.  Compare the miss rate of a *final* read after several
        # intermediate reads, with and without write-back.
        n, q = 36, 6
        system = UniformEpsilonIntersectingSystem(n, q)

        def final_read_miss_rate(cls, trials=250):
            misses = 0
            for seed in range(trials):
                cluster = Cluster(n, seed=seed)
                register = cls(system, cluster, rng=random.Random(seed))
                write = register.write("value")
                for _ in range(3):
                    register.read()  # intermediate reads (repairing or not)
                final = register.read()
                if final.timestamp != write.timestamp:
                    misses += 1
            return misses / trials

        plain_rate = final_read_miss_rate(ProbabilisticRegister)
        repaired_rate = final_read_miss_rate(WriteBackRegister)
        assert repaired_rate < plain_rate
        # And the repaired rate is far below the single-access epsilon.
        assert repaired_rate < system.epsilon / 2
