"""Tests for the simulated self-verifying data layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import VerificationError
from repro.protocol.signatures import SignatureScheme, SignedPayload
from repro.protocol.timestamps import Timestamp


class TestSignatureScheme:
    def test_sign_and_verify_round_trip(self):
        scheme = SignatureScheme(b"writer-key")
        ts = Timestamp(3, 1)
        signature = scheme.sign("x", {"value": 42}, ts)
        assert scheme.verify("x", {"value": 42}, ts, signature)

    def test_signed_payload_helper(self):
        scheme = SignatureScheme(b"writer-key")
        payload = scheme.signed_payload("x", "hello", Timestamp(1, 0))
        assert isinstance(payload, SignedPayload)
        assert scheme.verify(payload.variable, payload.value, payload.timestamp, payload.signature)

    def test_tampered_value_fails(self):
        scheme = SignatureScheme(b"writer-key")
        ts = Timestamp(3, 1)
        signature = scheme.sign("x", "honest", ts)
        assert not scheme.verify("x", "forged", ts, signature)

    def test_tampered_timestamp_fails(self):
        scheme = SignatureScheme(b"writer-key")
        signature = scheme.sign("x", "v", Timestamp(3, 1))
        assert not scheme.verify("x", "v", Timestamp(4, 1), signature)

    def test_wrong_variable_fails(self):
        scheme = SignatureScheme(b"writer-key")
        signature = scheme.sign("x", "v", Timestamp(3, 1))
        assert not scheme.verify("y", "v", Timestamp(3, 1), signature)

    def test_wrong_key_fails(self):
        ts = Timestamp(3, 1)
        signature = SignatureScheme(b"key-a").sign("x", "v", ts)
        assert not SignatureScheme(b"key-b").verify("x", "v", ts, signature)

    def test_missing_signature_fails(self):
        scheme = SignatureScheme(b"writer-key")
        assert not scheme.verify("x", "v", Timestamp(1, 0), None)
        assert not scheme.verify("x", "v", Timestamp(1, 0), b"")

    def test_require_valid(self):
        scheme = SignatureScheme(b"writer-key")
        ts = Timestamp(1, 0)
        signature = scheme.sign("x", "v", ts)
        scheme.require_valid("x", "v", ts, signature)
        with pytest.raises(VerificationError):
            scheme.require_valid("x", "other", ts, signature)

    def test_empty_key_rejected(self):
        with pytest.raises(VerificationError):
            SignatureScheme(b"")

    def test_non_json_values_are_signable(self):
        scheme = SignatureScheme(b"writer-key")
        ts = Timestamp(2, 0)
        value = frozenset({1, 2, 3})  # not JSON serialisable directly
        signature = scheme.sign("x", value, ts)
        assert scheme.verify("x", value, ts, signature)

    @given(
        st.text(min_size=1, max_size=10),
        st.one_of(st.integers(), st.text(max_size=20), st.lists(st.integers(), max_size=5)),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, variable, value, counter):
        scheme = SignatureScheme(b"prop-key")
        ts = Timestamp(counter, 0)
        signature = scheme.sign(variable, value, ts)
        assert scheme.verify(variable, value, ts, signature)
        # A different counter never verifies.
        assert not scheme.verify(variable, value, Timestamp(counter + 1, 0), signature)
