"""Tests for the ε-intersecting register protocol (Section 3.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.exceptions import ProtocolError
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan


def make_register(n=25, q=10, plan=None, seed=0):
    system = UniformEpsilonIntersectingSystem(n, q)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    register = ProbabilisticRegister(system, cluster, rng=random.Random(seed))
    return system, cluster, register


class TestWrite:
    def test_write_touches_exactly_one_quorum(self):
        _, cluster, register = make_register()
        outcome = register.write("v1")
        assert len(outcome.quorum) == 10
        assert outcome.acknowledged == outcome.quorum
        assert cluster.servers_holding("x", "v1") == outcome.quorum
        assert register.writes_performed == 1

    def test_timestamps_strictly_increase(self):
        _, _, register = make_register()
        first = register.write("v1")
        second = register.write("v2")
        third = register.write("v3")
        assert first.timestamp < second.timestamp < third.timestamp

    def test_crashed_servers_do_not_ack(self):
        plan = FailurePlan(crashed=frozenset(range(5)))
        _, _, register = make_register(plan=plan)
        outcome = register.write("v1")
        assert outcome.acknowledged == outcome.quorum - frozenset(range(5))

    def test_last_write_tracked(self):
        _, _, register = make_register()
        assert register.last_write is None
        outcome = register.write("v1")
        assert register.last_write == outcome


class TestRead:
    def test_read_before_any_write_returns_empty(self):
        _, _, register = make_register()
        outcome = register.read()
        assert outcome.is_empty
        assert outcome.value is None
        # No server has ever stored the variable, so no value-bearing replies.
        assert outcome.replies == 0

    def test_read_returns_latest_value_without_failures(self):
        _, _, register = make_register()
        register.write("old")
        register.write("new")
        outcome = register.read()
        assert outcome.value == "new"
        assert not outcome.is_empty
        assert outcome.reporting_servers
        assert register.read_is_fresh(outcome)

    def test_read_returns_highest_timestamp_not_latest_arrival(self):
        # Write old value everywhere manually, then a newer one through the
        # register: readers must pick the newer timestamp.
        system, cluster, register = make_register()
        register.write("v1")
        register.write("v2")
        outcome = register.read()
        assert outcome.value == "v2"

    def test_read_with_many_crashes_can_be_stale_or_empty(self):
        # Crash enough servers that the original write quorum is mostly gone;
        # the read should never invent a value that was not written.
        plan = FailurePlan(crashed=frozenset(range(10)))
        _, _, register = make_register(plan=plan)
        register.write("v1")
        outcome = register.read()
        assert outcome.value in ("v1", None)

    def test_read_counts(self):
        _, _, register = make_register()
        register.write("v")
        register.read()
        register.read()
        assert register.reads_performed == 2

    def test_read_is_fresh_requires_a_write(self):
        _, _, register = make_register()
        outcome = register.read()
        with pytest.raises(ProtocolError):
            register.read_is_fresh(outcome)


class TestConsistencyStatistics:
    def test_empirical_consistency_matches_epsilon(self):
        # Over many independent write/read pairs the miss rate approximates
        # the analytical epsilon (Theorem 3.2).
        system = UniformEpsilonIntersectingSystem(25, 5)  # epsilon ~ 0.29: measurable
        misses = 0
        trials = 400
        for seed in range(trials):
            cluster = Cluster(25, seed=seed)
            register = ProbabilisticRegister(system, cluster, rng=random.Random(seed))
            write = register.write("v")
            outcome = register.read()
            if outcome.timestamp != write.timestamp:
                misses += 1
        assert misses / trials == pytest.approx(system.epsilon, abs=0.08)

    def test_mismatched_cluster_size_rejected(self):
        system = UniformEpsilonIntersectingSystem(25, 5)
        cluster = Cluster(30)
        with pytest.raises(ProtocolError):
            ProbabilisticRegister(system, cluster)
