"""Tests for the masking (threshold read) register protocol (Section 5)."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ProtocolError
from repro.protocol.masking_variable import MaskingRegister
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan


def make_register(n=100, b=10, epsilon=1e-2, plan=None, seed=0):
    system = ProbabilisticMaskingSystem.for_epsilon(n, b, epsilon)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    register = MaskingRegister(system, cluster, rng=random.Random(seed))
    return system, cluster, register


class TestThresholdRead:
    def test_requires_masking_system(self):
        plain = UniformEpsilonIntersectingSystem(25, 10)
        cluster = Cluster(25)
        with pytest.raises(ProtocolError):
            MaskingRegister(plain, cluster)

    def test_read_threshold_exposed(self):
        system, _, register = make_register()
        assert register.read_threshold == system.read_threshold

    def test_fresh_read_without_failures(self):
        _, _, register = make_register()
        write = register.write("value")
        outcome = register.read()
        assert outcome.value == "value"
        assert outcome.timestamp == write.timestamp
        assert outcome.votes >= register.read_threshold
        assert outcome.passed_threshold
        assert register.classify_read(outcome) == "fresh"

    def test_read_before_write_is_empty(self):
        _, _, register = make_register()
        outcome = register.read()
        assert outcome.is_empty
        assert not outcome.passed_threshold
        with pytest.raises(ProtocolError):
            register.classify_read(outcome)

    def test_value_below_threshold_is_rejected(self):
        # Write through the register, then crash so many servers that fewer
        # than k holders can remain in any read quorum: the read returns ⊥
        # rather than accepting an under-vouched value.
        system, cluster, register = make_register(n=100, b=10)
        write = register.write("value")
        holders = sorted(write.quorum)
        for server in holders[: len(holders) - (register.read_threshold - 1)]:
            cluster.crash(server)
        outcome = register.read()
        assert outcome.value in (None, "value")
        if outcome.value is None:
            assert register.classify_read(outcome) == "empty"


class TestByzantineMasking:
    def test_colluding_forgers_rarely_defeat_threshold(self):
        # The strongest attack: b colluding servers all report the same forged
        # value with a maximal timestamp.  The forgery succeeds only when the
        # read quorum contains at least k of them, which has probability well
        # below the system's epsilon.
        n, b = 100, 10
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, 1e-2)
        fabricated = 0
        trials = 300
        for seed in range(trials):
            rng = random.Random(seed)
            plan = FailurePlan.colluding_forgers(
                n, b, "FORGED", Timestamp.forged_maximum(), rng=rng
            )
            cluster = Cluster(n, failure_plan=plan, seed=seed)
            register = MaskingRegister(system, cluster, rng=rng)
            register.write("honest")
            outcome = register.read()
            if outcome.value == "FORGED":
                fabricated += 1
        assert fabricated / trials <= 0.02

    def test_consistency_close_to_one_minus_epsilon(self):
        n, b, epsilon = 100, 10, 1e-2
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, epsilon)
        misses = 0
        trials = 300
        for seed in range(trials):
            rng = random.Random(seed)
            plan = FailurePlan.colluding_forgers(
                n, b, "FORGED", Timestamp.forged_maximum(), rng=rng
            )
            cluster = Cluster(n, failure_plan=plan, seed=seed)
            register = MaskingRegister(system, cluster, rng=rng)
            write = register.write("honest")
            outcome = register.read()
            if outcome.timestamp != write.timestamp:
                misses += 1
        assert misses / trials <= epsilon + 0.04

    def test_classification_of_fabricated_value(self):
        # Force fabrication by making *every* server a colluding forger.
        n, b = 25, 25
        system = ProbabilisticMaskingSystem(25, 10, 5)
        plan = FailurePlan.colluding_forgers(
            n, n, "FORGED", Timestamp.forged_maximum(), rng=random.Random(0)
        )
        cluster = Cluster(n, failure_plan=plan, seed=0)
        register = MaskingRegister(system, cluster, rng=random.Random(0))
        register.write("honest")
        outcome = register.read()
        assert outcome.value == "FORGED"
        assert register.classify_read(outcome) == "fabricated"
