"""Tests for the quorum-based advisory lock."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError, ProtocolError
from repro.protocol.lock import QuorumLock
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailurePlan


def make_lock(n=50, epsilon=1e-3, seed=0, plan=None, signatures=None, system=None):
    system = system or UniformEpsilonIntersectingSystem.for_epsilon(n, epsilon)
    cluster = Cluster(n, failure_plan=plan or FailurePlan.none(), seed=seed)
    return QuorumLock(
        system, cluster, name="shared", signatures=signatures, rng=random.Random(seed)
    )


class TestBasicLocking:
    def test_first_acquire_succeeds(self):
        lock = make_lock()
        attempt = lock.acquire(client_id=1)
        assert attempt.acquired
        assert attempt.holder_seen is None
        assert lock.holder() == 1
        assert lock.acquisitions == 1

    def test_second_acquire_sees_the_holder(self):
        lock = make_lock()
        lock.acquire(client_id=1)
        attempt = lock.acquire(client_id=2)
        assert not attempt.acquired
        assert attempt.holder_seen == 1
        assert attempt.write_quorum is None

    def test_release_then_reacquire(self):
        lock = make_lock()
        lock.acquire(client_id=1)
        lock.release(client_id=1)
        assert lock.holder() is None
        attempt = lock.acquire(client_id=2)
        assert attempt.acquired
        assert lock.holder() == 2

    def test_release_without_holding_raises(self):
        lock = make_lock()
        with pytest.raises(ProtocolError):
            lock.release(client_id=1)
        lock.acquire(client_id=1)
        with pytest.raises(ProtocolError):
            lock.release(client_id=2)

    def test_negative_client_rejected(self):
        lock = make_lock()
        with pytest.raises(ProtocolError):
            lock.acquire(client_id=-1)

    def test_validation(self):
        system = UniformEpsilonIntersectingSystem(25, 10)
        with pytest.raises(ConfigurationError):
            QuorumLock(system, Cluster(30))
        with pytest.raises(ConfigurationError):
            QuorumLock(system, Cluster(25), name="")

    def test_distinct_locks_are_independent(self):
        system = UniformEpsilonIntersectingSystem.for_epsilon(50, 1e-3)
        cluster = Cluster(50, seed=1)
        first = QuorumLock(system, cluster, name="a", rng=random.Random(1))
        second = QuorumLock(system, cluster, name="b", rng=random.Random(2))
        first.acquire(1)
        assert second.holder() is None
        assert second.acquire(2).acquired


class TestProbabilisticSemantics:
    def test_mutual_exclusion_violation_rate_tracks_epsilon(self):
        # Two clients acquire back-to-back; both succeed only when the second
        # client's read quorum misses the first client's write quorum.
        system = UniformEpsilonIntersectingSystem(36, 6)  # measurable epsilon
        violations = 0
        trials = 300
        for seed in range(trials):
            cluster = Cluster(36, seed=seed)
            lock = QuorumLock(system, cluster, rng=random.Random(seed))
            first = lock.acquire(1)
            second = lock.acquire(2)
            if first.acquired and second.acquired:
                violations += 1
        assert violations / trials == pytest.approx(system.epsilon, abs=0.08)

    def test_tight_epsilon_gives_practically_exclusive_lock(self):
        system = UniformEpsilonIntersectingSystem.for_epsilon(64, 1e-3)
        double_grants = 0
        for seed in range(100):
            cluster = Cluster(64, seed=seed)
            lock = QuorumLock(system, cluster, rng=random.Random(seed))
            lock.acquire(1)
            if lock.acquire(2).acquired:
                double_grants += 1
        assert double_grants == 0


class ScriptedQuorumSystem:
    """Quorum 'system' replaying a fixed quorum sequence (test-only).

    Lets a test choose exactly which replicas each read/write touches, so a
    lagging replica set (one that missed the release write) can be steered
    under a later read deterministically.
    """

    def __init__(self, n, script):
        self.n = n
        self._script = iter(script)

    def sample_quorum(self, rng):
        return frozenset(next(self._script))


class TestReleaseStaleness:
    FRESH = (0, 1, 2)  # replicas that will receive the release write
    LAGGING = (3, 4, 5)  # replicas that only ever saw the acquisition

    def scripted_lock(self, script, cluster=None):
        cluster = cluster or Cluster(6, seed=0)
        system = ScriptedQuorumSystem(6, script)
        return QuorumLock(system, cluster, rng=random.Random(0)), cluster

    def test_own_release_suppresses_phantom_holder_on_lagging_quorum(self):
        lock, _ = self.scripted_lock(
            [
                self.LAGGING,  # acquire: read (empty)
                self.LAGGING,  # acquire: write "held"
                self.LAGGING,  # release: read (sees the holder)
                self.FRESH,  # release: write "released"
                self.LAGGING,  # holder(): stale quorum, release invisible
            ]
        )
        lock.acquire(client_id=1)
        lock.release(client_id=1)
        # The read quorum contains only replicas that missed the release;
        # the stale "held" record must not be reported as a live holder.
        assert lock.holder() is None

    def test_observed_release_suppresses_phantom_holder_for_other_clients(self):
        script = [
            self.LAGGING,  # acquire: read
            self.LAGGING,  # acquire: write "held"
            self.LAGGING,  # release: read
            self.FRESH,  # release: write "released"
        ]
        lock, cluster = self.scripted_lock(script)
        lock.acquire(client_id=1)
        lock.release(client_id=1)
        # A different client process: first read sees the release, the next
        # read draws only lagging replicas.  Knowledge of the release must
        # carry over — no phantom holder, and the lock is acquirable.
        observer = QuorumLock(
            ScriptedQuorumSystem(6, [self.FRESH, self.LAGGING, self.LAGGING]),
            cluster,
            rng=random.Random(1),
        )
        assert observer.holder() is None  # sees "released"
        attempt = observer.acquire(client_id=2)  # stale read quorum
        assert attempt.acquired
        assert attempt.holder_seen is None

    def test_unreleased_holder_is_still_reported(self):
        lock, _ = self.scripted_lock(
            [
                self.LAGGING,  # acquire: read
                self.LAGGING,  # acquire: write "held"
                self.LAGGING,  # holder(): same replicas, lock genuinely held
            ]
        )
        lock.acquire(client_id=1)
        assert lock.holder() == 1


class TestByzantineLocking:
    def test_masking_threshold_blocks_fabricated_holders(self):
        # Byzantine servers all claim the lock is held by a phantom client;
        # with a masking system they can convince a reader only if the read
        # quorum hits at least k of them.
        n, b = 64, 6
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, 1e-2)
        plan = FailurePlan.colluding_forgers(
            n,
            b,
            {"state": "held", "holder": 666},
            Timestamp.forged_maximum(),
            rng=random.Random(5),
        )
        cluster = Cluster(n, failure_plan=plan, seed=5)
        lock = QuorumLock(system, cluster, rng=random.Random(5))
        # An honest client is not blocked by the phantom holder.
        assert lock.acquire(client_id=1).acquired

    def test_signed_records_survive_forging_servers(self):
        n, b = 64, 12
        system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
        scheme = SignatureScheme(b"lock-authority")
        plan = FailurePlan.colluding_forgers(
            n,
            b,
            {"state": "held", "holder": 666},
            Timestamp.forged_maximum(),
            rng=random.Random(6),
        )
        cluster = Cluster(n, failure_plan=plan, seed=6)
        lock = QuorumLock(system, cluster, signatures=scheme, rng=random.Random(6))
        assert lock.acquire(client_id=1).acquired
        # The phantom holder never shows up because its records are unsigned.
        assert lock.holder() == 1
