"""Tests for the repro.api deployment facade.

The facade must be pure composition: every client it hands out goes
through the exact constructors the conformance suite pins down, so these
tests check wiring (routing, identity, lifecycle, validation), not
protocol behaviour — that is covered where the protocols live.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.api import Deployment, DeploymentBuilder
from repro.apps.mutex import AsyncQuorumMutex, lock_variable
from repro.exceptions import ConfigurationError
from repro.experiments.serve import serve_scenario
from repro.service.sharding import ShardedAsyncRegisterClient
from repro.simulation.scenario import ScenarioSpec, WorkloadSpec
from repro.simulation.failures import FailureModel
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem

SCENARIO = ScenarioSpec(
    system=UniformEpsilonIntersectingSystem.for_epsilon(36, 1e-4),
    failure_model=FailureModel.none(),
    workload=WorkloadSpec(writes=1),
)


def run(coro):
    return asyncio.run(coro)


class TestBuilder:
    def test_builder_returns_itself_for_chaining(self):
        builder = Deployment.builder(SCENARIO)
        assert builder.transport("inproc") is builder
        assert builder.shards(2) is builder
        assert builder.deadline(0.1) is builder
        assert builder.seed(7) is builder
        assert builder.dispatch("per-rpc") is builder
        assert builder.selection("latency-aware") is builder
        assert builder.conditions(latency=0.001) is builder
        assert builder.quorum_pool(16) is builder

    def test_build_materialises_the_configuration(self):
        deployment = (
            Deployment.builder(SCENARIO)
            .transport("inproc")
            .shards(3)
            .deadline(0.1)
            .seed(7)
            .build()
        )
        assert deployment.shard_count == 3
        assert deployment.transport == "inproc"
        assert deployment.deadline == 0.1
        assert deployment.scenario is SCENARIO

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Deployment.builder("not-a-scenario")
        builder = Deployment.builder(SCENARIO)
        with pytest.raises(ConfigurationError):
            builder.transport("pigeon")
        with pytest.raises(ConfigurationError):
            builder.shards(0)
        with pytest.raises(ConfigurationError):
            builder.deadline(-1.0)
        with pytest.raises(ConfigurationError):
            builder.dispatch("sometimes")
        with pytest.raises(ConfigurationError):
            builder.selection("psychic")
        with pytest.raises(ConfigurationError):
            builder.quorum_pool(-1)
        with pytest.raises(ConfigurationError):
            Deployment.builder(SCENARIO).transport("tcp").deadline(None).build()
        with pytest.raises(ConfigurationError):
            Deployment("not-a-builder")

    def test_unbounded_deadline_is_allowed_in_process(self):
        deployment = Deployment.builder(SCENARIO).deadline(None).build()
        assert deployment.deadline is None


class TestRegisterClients:
    def test_connect_round_trips_through_the_service_stack(self):
        async def scenario():
            deployment = Deployment.builder(SCENARIO).shards(2).seed(7).build()
            async with deployment:
                client = deployment.connect()
                assert isinstance(client, ShardedAsyncRegisterClient)
                await client.write("x", "hello")
                outcome = await client.read("x")
                assert outcome.value == "hello"

        run(scenario())

    def test_connect_carries_the_writer_identity(self):
        async def scenario():
            deployment = Deployment.builder(SCENARIO).seed(7).build()
            async with deployment:
                first = deployment.connect(writer_id=3)
                second = deployment.connect(writer_id=4)
                await first.write("x", "from-3")
                await second.write("x", "from-4")
                assert first.register_for("x")._timestamps.writer_id == 3
                assert second.register_for("x")._timestamps.writer_id == 4

        run(scenario())

    def test_deployments_are_reproducible_from_one_seed(self):
        async def read_after_write(seed):
            deployment = Deployment.builder(SCENARIO).seed(seed).build()
            async with deployment:
                client = deployment.connect()
                outcome = await client.write("x", "v")
                return sorted(outcome.quorum)

        assert run(read_after_write(7)) == run(read_after_write(7))
        # A different seed draws different quorums (overwhelmingly likely
        # for 18-of-36 sampling; pinned by these two seeds).
        assert run(read_after_write(7)) != run(read_after_write(8))

    def test_masking_scenario_resolves_the_masking_frontend(self):
        async def scenario():
            masking = serve_scenario(n=36, quorum_size=18, b=2, byzantine=True)
            deployment = Deployment.builder(masking).seed(1).build()
            async with deployment:
                client = deployment.connect()
                await client.write("x", "guarded")
                outcome = await client.read("x")
                assert outcome.value == "guarded"
                assert outcome.votes >= outcome.threshold

        run(scenario())


class TestLockClients:
    def test_lock_clients_contend_through_the_same_deployment(self):
        async def scenario():
            deployment = Deployment.builder(SCENARIO).seed(11).build()
            async with deployment:
                first = deployment.lock_client("leader", client_id=1)
                second = deployment.lock_client("leader", client_id=2)
                assert isinstance(first, AsyncQuorumMutex)
                grant = await first.acquire()
                assert grant.granted
                attempt = await second.request()
                assert not attempt.granted
                assert attempt.holder_seen == 1
                await first.release()
                assert (await second.acquire()).granted

        run(scenario())

    def test_lock_routes_to_the_shard_owning_its_variable(self):
        async def scenario():
            deployment = Deployment.builder(SCENARIO).shards(4).seed(11).build()
            async with deployment:
                mutex = deployment.lock_client("leader", client_id=0)
                expected = deployment.sharded.shard_for(lock_variable("leader"))
                shard = deployment.sharded.shards[expected]
                assert mutex.register.client.nodes[0] is shard.client_nodes[0]

        run(scenario())

    def test_explicit_rng_overrides_the_derived_stream(self):
        async def scenario():
            deployment = Deployment.builder(SCENARIO).seed(11).build()
            async with deployment:
                mutex = deployment.lock_client(
                    "leader", client_id=0, rng=random.Random(99)
                )
                assert (await mutex.request()).granted

        run(scenario())


class TestTcpLifecycle:
    def test_tcp_deployment_serves_registers_and_locks(self):
        async def scenario():
            deployment = (
                Deployment.builder(SCENARIO)
                .transport("tcp")
                .deadline(0.25)
                .seed(5)
                .build()
            )
            async with deployment:
                client = deployment.connect()
                await client.write("x", "over-the-wire")
                assert (await client.read("x")).value == "over-the-wire"
                mutex = deployment.lock_client("leader", client_id=1)
                assert (await mutex.acquire()).granted
                await mutex.release()

        run(scenario())

    def test_clients_before_start_are_refused_over_tcp(self):
        async def scenario():
            deployment = (
                Deployment.builder(SCENARIO).transport("tcp").seed(5).build()
            )
            with pytest.raises(ConfigurationError, match="start"):
                deployment.connect()
            await deployment.aclose()

        run(scenario())
