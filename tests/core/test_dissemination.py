"""Tests for (b, ε)-dissemination quorum systems (Section 4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intersection import dissemination_epsilon_exact
from repro.core.bounds import strict_load_lower_bound, strict_resilience_bound
from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_basic_parameters(self, dissemination_system):
        system = dissemination_system
        assert system.n == 100
        assert system.byzantine_threshold == 10
        assert system.byzantine_fraction == pytest.approx(0.1)
        assert system.epsilon <= 1e-3
        assert "Dissemination" in system.describe()

    def test_epsilon_matches_exact_formula(self, dissemination_system):
        system = dissemination_system
        assert system.epsilon == pytest.approx(
            dissemination_epsilon_exact(100, system.quorum_size, 10)
        )

    def test_bound_dominates_exact(self):
        # Theorem 4.4 regime (b = n/3) and Theorem 4.6 regime (b = n/2).
        for n, b in ((99, 33), (100, 50)):
            system = ProbabilisticDisseminationSystem(n, 30, b)
            assert system.epsilon <= system.epsilon_bound() + 1e-12

    def test_from_ell(self):
        system = ProbabilisticDisseminationSystem.from_ell(100, 2.4, 4)
        assert system.quorum_size == 24

    def test_for_epsilon_minimality(self):
        system = ProbabilisticDisseminationSystem.for_epsilon(225, 7, 1e-3)
        assert system.epsilon <= 1e-3
        smaller = ProbabilisticDisseminationSystem(225, system.quorum_size - 1, 7)
        assert smaller.epsilon > 1e-3

    def test_for_epsilon_impossible_raises(self):
        # Tiny universe, huge b, tiny epsilon: no admissible quorum size.
        with pytest.raises(ConfigurationError):
            ProbabilisticDisseminationSystem.for_epsilon(10, 8, 1e-6)

    def test_fault_tolerance_condition_enforced(self):
        # Definition 4.1 requires A > b, i.e. q <= n - b.
        with pytest.raises(ConfigurationError):
            ProbabilisticDisseminationSystem(100, 95, 10)

    def test_byzantine_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticDisseminationSystem(100, 20, 0)
        with pytest.raises(ConfigurationError):
            ProbabilisticDisseminationSystem(100, 20, 100)


class TestBreakingStrictLimits:
    def test_tolerates_more_than_a_third(self):
        # Strict dissemination systems stop at b <= (n-1)/3; the probabilistic
        # construction works for b = n/2 with a small epsilon for large n.
        n = 900
        b = 450
        assert b > strict_resilience_bound(n, "dissemination")
        system = ProbabilisticDisseminationSystem(n, 180, b)
        assert system.epsilon < 0.01

    def test_beats_strict_load_lower_bound(self):
        # For b = n/3 the strict bound is sqrt((b+1)/n) ~ 0.58 while the
        # probabilistic construction's load is O(1/sqrt(n)).
        n = 900
        b = n // 3
        system = ProbabilisticDisseminationSystem.for_epsilon(n, b, 1e-3)
        assert system.load() < strict_load_lower_bound(n, b, "dissemination")

    def test_graceful_degradation(self, dissemination_system):
        # Fewer actual faults -> better epsilon (remark after Theorem 4.6).
        system = dissemination_system
        eps_full = system.epsilon
        eps_half = system.epsilon_for(5)
        eps_none = system.epsilon_for(0)
        assert eps_none <= eps_half <= eps_full

    def test_epsilon_for_validation(self, dissemination_system):
        with pytest.raises(ConfigurationError):
            dissemination_system.epsilon_for(11)
        with pytest.raises(ConfigurationError):
            dissemination_system.epsilon_for(-1)


class TestMeasures:
    def test_load_and_fault_tolerance(self, dissemination_system):
        system = dissemination_system
        assert system.load() == pytest.approx(system.quorum_size / 100)
        assert system.fault_tolerance() == 100 - system.quorum_size + 1
        assert system.fault_tolerance() > system.byzantine_threshold

    def test_failure_probability(self, dissemination_system):
        system = dissemination_system
        assert system.failure_probability(0.0) == 0.0
        assert system.failure_probability(1.0) == 1.0
        for p in (0.3, 0.6):
            assert system.failure_probability(p) <= system.failure_probability_bound(p) + 1e-12

    def test_profile_records_byzantine_threshold(self, dissemination_system):
        assert dissemination_system.profile().byzantine_threshold == 10

    def test_sample_and_live_quorum(self, dissemination_system, rng):
        system = dissemination_system
        assert len(system.sample_quorum(rng)) == system.quorum_size
        assert system.find_live_quorum(set(range(100))) is not None
        assert system.find_live_quorum(set(range(system.quorum_size - 1))) is None

    @given(st.integers(min_value=10, max_value=150), st.data())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_valid_parameters(self, n, data):
        b = data.draw(st.integers(min_value=1, max_value=n - 2))
        q = data.draw(st.integers(min_value=1, max_value=n - b))
        system = ProbabilisticDisseminationSystem(n, q, b)
        assert 0.0 <= system.epsilon <= 1.0
        assert system.fault_tolerance() > b
        assert system.epsilon >= dissemination_epsilon_exact(n, q, 0) - 1e-12
