"""Tests for access strategies."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import ExplicitStrategy, UniformSubsetStrategy
from repro.exceptions import ConfigurationError, StrategyError


class TestUniformSubsetStrategy:
    def test_samples_have_fixed_size(self, rng):
        strategy = UniformSubsetStrategy(40, 7)
        for _ in range(30):
            quorum = strategy.sample(rng)
            assert len(quorum) == 7
            assert all(0 <= s < 40 for s in quorum)

    def test_expected_quorum_size(self):
        assert UniformSubsetStrategy(40, 7).expected_quorum_size() == 7.0

    def test_weight_of(self):
        strategy = UniformSubsetStrategy(6, 2)
        assert strategy.weight_of(frozenset({0, 1})) == pytest.approx(1 / math.comb(6, 2))
        assert strategy.weight_of(frozenset({0, 1, 2})) == 0.0
        assert strategy.weight_of(frozenset({0, 9})) == 0.0

    def test_per_server_load(self):
        assert UniformSubsetStrategy(100, 23).per_server_load() == pytest.approx(0.23)

    def test_sampling_is_roughly_uniform_over_servers(self):
        strategy = UniformSubsetStrategy(10, 3)
        rng = random.Random(5)
        counts = Counter()
        draws = 6000
        for _ in range(draws):
            for server in strategy.sample(rng):
                counts[server] += 1
        expected = draws * 3 / 10
        for server in range(10):
            assert counts[server] == pytest.approx(expected, rel=0.12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformSubsetStrategy(0, 1)
        with pytest.raises(ConfigurationError):
            UniformSubsetStrategy(5, 0)
        with pytest.raises(ConfigurationError):
            UniformSubsetStrategy(5, 6)

    def test_describe(self):
        assert "UniformSubsets" in UniformSubsetStrategy(5, 2).describe()


class TestExplicitStrategy:
    def test_uniform_by_default(self):
        strategy = ExplicitStrategy([{0, 1}, {1, 2}])
        assert strategy.weights == pytest.approx((0.5, 0.5))
        assert strategy.expected_quorum_size() == pytest.approx(2.0)

    def test_weights_normalised(self):
        strategy = ExplicitStrategy([{0}, {1}, {2}], weights=[1, 1, 2])
        assert strategy.weights == pytest.approx((0.25, 0.25, 0.5))

    def test_weight_of_duplicates_are_merged_by_lookup(self):
        strategy = ExplicitStrategy([{0, 1}, {0, 1}], weights=[0.25, 0.75])
        assert strategy.weight_of(frozenset({0, 1})) == pytest.approx(1.0)

    def test_sampling_respects_weights(self):
        strategy = ExplicitStrategy([{0}, {1}], weights=[0.9, 0.1])
        rng = random.Random(3)
        counts = Counter(tuple(sorted(strategy.sample(rng))) for _ in range(4000))
        assert counts[(0,)] > counts[(1,)] * 4

    def test_per_server_load_and_load(self):
        strategy = ExplicitStrategy([{0, 1}, {1, 2}], weights=[0.5, 0.5])
        assert strategy.per_server_load(3) == pytest.approx([0.5, 1.0, 0.5])
        assert strategy.load(3) == pytest.approx(1.0)

    def test_per_server_load_validates_universe(self):
        strategy = ExplicitStrategy([{0, 7}])
        with pytest.raises(ConfigurationError):
            strategy.per_server_load(3)

    def test_restrict_to(self):
        strategy = ExplicitStrategy([{0, 1}, {1, 2}, {2, 3}], weights=[0.2, 0.3, 0.5])
        restricted = strategy.restrict_to([frozenset({1, 2}), frozenset({2, 3})])
        assert restricted.weight_of(frozenset({1, 2})) == pytest.approx(0.3 / 0.8)
        assert restricted.weight_of(frozenset({0, 1})) == 0.0

    def test_restrict_to_empty_raises(self):
        strategy = ExplicitStrategy([{0, 1}])
        with pytest.raises(StrategyError):
            strategy.restrict_to([frozenset({5, 6})])

    def test_validation(self):
        with pytest.raises(StrategyError):
            ExplicitStrategy([])
        with pytest.raises(StrategyError):
            ExplicitStrategy([set()])
        with pytest.raises(StrategyError):
            ExplicitStrategy([{0}], weights=[1.0, 2.0])
        with pytest.raises(StrategyError):
            ExplicitStrategy([{0}], weights=[-1.0])
        with pytest.raises(StrategyError):
            ExplicitStrategy([{0}, {1}], weights=[0.0, 0.0])

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=9), min_size=1, max_size=4),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_weights_always_sum_to_one(self, quorums):
        strategy = ExplicitStrategy(quorums)
        assert sum(strategy.weights) == pytest.approx(1.0)
        assert strategy.sample(random.Random(0)) in set(strategy.quorums)
