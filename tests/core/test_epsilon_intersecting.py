"""Tests for ε-intersecting quorum systems (Section 3)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intersection import intersection_epsilon_exact
from repro.core.epsilon_intersecting import (
    EpsilonIntersectingSystem,
    UniformEpsilonIntersectingSystem,
)
from repro.exceptions import ConfigurationError


class TestUniformConstruction:
    def test_basic_parameters(self, medium_uniform_system):
        system = medium_uniform_system
        assert system.n == 100
        assert system.quorum_size == 23
        assert system.ell == pytest.approx(2.3)
        assert system.expected_overlap() == pytest.approx(23 * 23 / 100)
        assert "R(" in system.describe()

    def test_epsilon_exact_and_bound(self, medium_uniform_system):
        system = medium_uniform_system
        assert system.epsilon == pytest.approx(intersection_epsilon_exact(100, 23))
        # Theorem 3.16: the construction is e^{-ell^2}-intersecting.
        assert system.epsilon <= system.epsilon_bound()
        assert system.epsilon_bound() == pytest.approx(math.exp(-(2.3 ** 2)))

    def test_for_epsilon_meets_target(self):
        for n in (25, 100, 400):
            system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
            assert system.epsilon <= 1e-3
            # Minimality: one server fewer misses the target.
            if system.quorum_size > 1:
                smaller = UniformEpsilonIntersectingSystem(n, system.quorum_size - 1)
                assert smaller.epsilon > 1e-3

    def test_from_ell(self):
        system = UniformEpsilonIntersectingSystem.from_ell(100, 2.2)
        assert system.quorum_size == 22

    def test_load_is_q_over_n(self, medium_uniform_system):
        assert medium_uniform_system.load() == pytest.approx(0.23)

    def test_fault_tolerance_theta_n(self, medium_uniform_system):
        # Definition 3.7 evaluates to n - q + 1 for the symmetric construction.
        assert medium_uniform_system.fault_tolerance() == 100 - 23 + 1

    def test_escapes_strict_tradeoff(self, medium_uniform_system):
        # Strict systems obey A(Q) <= n L(Q); the probabilistic construction
        # does not (that is the point of Section 3.4).
        system = medium_uniform_system
        assert system.fault_tolerance() > system.n * system.load()

    def test_failure_probability_exact_and_bound(self, medium_uniform_system):
        system = medium_uniform_system
        for p in (0.2, 0.5, 0.7):
            exact = system.failure_probability(p)
            assert 0.0 <= exact <= 1.0
            assert exact <= system.failure_probability_bound(p) + 1e-12

    def test_beats_strict_failure_probability_above_half(self):
        # For 1/2 <= p <= 1 - ell/sqrt(n) the construction beats every strict
        # system, whose failure probability is at least p (Peleg-Wool).
        system = UniformEpsilonIntersectingSystem.for_epsilon(400, 1e-3)
        for p in (0.5, 0.6, 0.7):
            assert system.failure_probability(p) < p

    def test_sample_quorum_size(self, medium_uniform_system, rng):
        for _ in range(20):
            assert len(medium_uniform_system.sample_quorum(rng)) == 23

    def test_find_live_quorum(self, small_uniform_system):
        system = small_uniform_system
        assert system.find_live_quorum(set(range(25))) is not None
        assert system.find_live_quorum(set(range(9))) is None
        quorum = system.find_live_quorum(set(range(12)))
        assert quorum is not None and len(quorum) == 10

    def test_profile(self, small_uniform_system):
        profile = small_uniform_system.profile()
        assert profile.n == 25
        assert profile.quorum_size == 10
        assert profile.epsilon == pytest.approx(small_uniform_system.epsilon)
        assert profile.byzantine_threshold == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            UniformEpsilonIntersectingSystem(10, 0)
        with pytest.raises(ConfigurationError):
            UniformEpsilonIntersectingSystem(10, 11)
        with pytest.raises(ConfigurationError):
            UniformEpsilonIntersectingSystem.from_ell(25, 6.0)  # q > n

    @given(st.integers(min_value=4, max_value=200), st.data())
    @settings(max_examples=40, deadline=None)
    def test_measures_consistent(self, n, data):
        q = data.draw(st.integers(min_value=1, max_value=n))
        system = UniformEpsilonIntersectingSystem(n, q)
        assert 0.0 <= system.epsilon <= 1.0
        assert system.epsilon <= system.epsilon_bound() + 1e-12
        assert system.load() == pytest.approx(q / n)
        assert system.fault_tolerance() == n - q + 1

    def test_empirical_intersection_rate(self):
        # Draw quorum pairs through the strategy and check the empirical
        # non-intersection frequency matches the analytical epsilon.
        system = UniformEpsilonIntersectingSystem(36, 8)
        rng = random.Random(11)
        trials = 20_000
        misses = 0
        for _ in range(trials):
            if not system.sample_quorum(rng) & system.sample_quorum(rng):
                misses += 1
        assert misses / trials == pytest.approx(system.epsilon, abs=0.01)


class TestExplicitEpsilonIntersecting:
    def build(self):
        quorums = [{0, 1, 2}, {2, 3, 4}, {5, 6, 7}]
        weights = [0.45, 0.45, 0.1]
        return EpsilonIntersectingSystem(8, quorums, weights)

    def test_epsilon_exact_summation(self):
        system = self.build()
        # Non-intersecting pairs: ({0,1,2},{5,6,7}) and ({2,3,4},{5,6,7}) in
        # both orders, plus ({5,6,7},{5,6,7}) intersects itself.
        expected = 2 * (0.45 * 0.1) * 2
        assert system.epsilon == pytest.approx(expected)
        assert system.epsilon_bound() == pytest.approx(system.epsilon)

    def test_load_of_supplied_strategy(self):
        system = self.build()
        # Server 2 is in the two heavy quorums.
        assert system.load() == pytest.approx(0.9)

    def test_fault_tolerance_ignores_low_quality_quorums(self):
        system = self.build()
        # The {5,6,7} quorum intersects others with probability 0.1 only, so
        # it is not high quality; the transversal of the two heavy quorums is
        # a single server (server 2).
        assert system.fault_tolerance() == 1

    def test_failure_probability_bounds(self):
        system = self.build()
        value = system.failure_probability(0.3, trials=2000, seed=4)
        assert 0.0 <= value <= 1.0

    def test_rejects_quorum_outside_universe(self):
        with pytest.raises(ConfigurationError):
            EpsilonIntersectingSystem(3, [{0, 5}])

    def test_high_quality_quorums_exposed(self):
        system = self.build()
        high_quality = system.high_quality_quorums()
        assert frozenset({0, 1, 2}) in high_quality
        assert frozenset({5, 6, 7}) not in high_quality

    def test_find_live_quorum(self):
        system = self.build()
        assert system.find_live_quorum({0, 1, 2, 9}) == frozenset({0, 1, 2})
        assert system.find_live_quorum({0, 1}) is None

    def test_describe(self):
        assert "EpsilonIntersecting" in self.build().describe()
