"""Tests for the calibration logic that sizes the constructions (Tables 2-4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intersection import (
    dissemination_epsilon_exact,
    intersection_epsilon_exact,
    masking_epsilon_exact,
)
from repro.core.calibration import (
    ell_for_quorum_size,
    minimal_ell_for_dissemination,
    minimal_ell_for_epsilon,
    minimal_ell_for_masking,
    minimal_quorum_size_for_dissemination,
    minimal_quorum_size_for_epsilon,
    minimal_quorum_size_for_masking,
    quorum_size_for_ell,
)
from repro.exceptions import ConfigurationError


class TestEllHelpers:
    def test_round_trip(self):
        assert ell_for_quorum_size(100, 23) == pytest.approx(2.3)
        assert quorum_size_for_ell(100, 2.3) == 23
        assert quorum_size_for_ell(100, 2.31) == 24

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ell_for_quorum_size(0, 1)
        with pytest.raises(ConfigurationError):
            ell_for_quorum_size(10, 0)
        with pytest.raises(ConfigurationError):
            quorum_size_for_ell(10, 0.0)
        with pytest.raises(ConfigurationError):
            quorum_size_for_ell(25, 6.0)


class TestIntersectingCalibration:
    def test_meets_target_and_is_minimal(self):
        for n in (25, 64, 100, 400):
            q = minimal_quorum_size_for_epsilon(n, 1e-3)
            assert intersection_epsilon_exact(n, q) <= 1e-3
            if q > 1:
                assert intersection_epsilon_exact(n, q - 1) > 1e-3

    def test_matches_linear_scan(self):
        n, epsilon = 50, 0.01
        expected = next(
            q for q in range(1, n + 1) if intersection_epsilon_exact(n, q) <= epsilon
        )
        assert minimal_quorum_size_for_epsilon(n, epsilon) == expected

    def test_larger_epsilon_means_smaller_quorums(self):
        loose = minimal_quorum_size_for_epsilon(225, 0.05)
        tight = minimal_quorum_size_for_epsilon(225, 1e-4)
        assert loose <= tight

    def test_quorum_size_scales_like_sqrt_n(self):
        # Theta(sqrt(n)) scaling: the ell parameter stays bounded as n grows.
        ells = [minimal_ell_for_epsilon(n, 1e-3) for n in (100, 400, 900)]
        assert all(1.5 < ell < 3.5 for ell in ells)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_epsilon(0, 0.1)
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_epsilon(10, 0.0)
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_epsilon(10, 1.0)

    @given(st.integers(min_value=2, max_value=300), st.floats(min_value=1e-6, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_always_meets_target(self, n, epsilon):
        q = minimal_quorum_size_for_epsilon(n, epsilon)
        assert 1 <= q <= n // 2 + 1
        assert intersection_epsilon_exact(n, q) <= epsilon


class TestDisseminationCalibration:
    def test_meets_target_and_is_minimal(self):
        n, b = 100, 4
        q = minimal_quorum_size_for_dissemination(n, b, 1e-3)
        assert q is not None
        assert dissemination_epsilon_exact(n, q, b) <= 1e-3
        assert dissemination_epsilon_exact(n, q - 1, b) > 1e-3

    def test_matches_paper_table3_sizes(self):
        # Our exact calibration reproduces the paper's Table 3 quorum sizes.
        expected = {25: 11, 100: 24, 225: 37, 400: 50, 625: 63, 900: 77}
        for n, size in expected.items():
            b = int((math.isqrt(n) - 1) // 2)
            assert minimal_quorum_size_for_dissemination(n, b, 1e-3) == size

    def test_respects_fault_tolerance_cap(self):
        # The returned size never exceeds n - b.
        q = minimal_quorum_size_for_dissemination(30, 10, 0.05)
        assert q is not None and q <= 20

    def test_returns_none_when_impossible(self):
        assert minimal_quorum_size_for_dissemination(10, 8, 1e-9) is None
        assert minimal_ell_for_dissemination(10, 8, 1e-9) is None

    def test_b_zero_reduces_to_intersection(self):
        assert minimal_quorum_size_for_dissemination(100, 0, 1e-3) == (
            minimal_quorum_size_for_epsilon(100, 1e-3)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_dissemination(10, 10, 0.1)
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_dissemination(10, -1, 0.1)


class TestMaskingCalibration:
    def test_meets_target(self):
        n, b = 100, 4
        q = minimal_quorum_size_for_masking(n, b, 1e-3)
        assert q is not None
        assert masking_epsilon_exact(n, q, b) <= 1e-3

    def test_close_to_paper_table4_sizes(self):
        # The paper's Table 4 sizes (likely produced with a slightly different
        # threshold optimisation) should be within a few servers of ours.
        paper = {25: 15, 100: 38, 225: 64, 400: 94, 625: 123, 900: 152}
        for n, paper_q in paper.items():
            b = int((math.isqrt(n) - 1) // 2)
            ours = minimal_quorum_size_for_masking(n, b, 1e-3)
            assert ours is not None
            assert abs(ours - paper_q) <= 6

    def test_fixed_threshold_variant(self):
        q = minimal_quorum_size_for_masking(100, 4, 1e-2, threshold=6.0)
        assert q is not None
        assert masking_epsilon_exact(100, q, 4, 6.0) <= 1e-2

    def test_returns_none_when_impossible(self):
        assert minimal_quorum_size_for_masking(12, 5, 1e-9) is None
        assert minimal_ell_for_masking(12, 5, 1e-9) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_masking(10, 0, 0.1)
        with pytest.raises(ConfigurationError):
            minimal_quorum_size_for_masking(0, 1, 0.1)

    def test_ell_helper_consistent(self):
        n, b = 225, 7
        q = minimal_quorum_size_for_masking(n, b, 1e-3)
        ell = minimal_ell_for_masking(n, b, 1e-3)
        assert ell == pytest.approx(q / math.sqrt(n))
