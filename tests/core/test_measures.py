"""Tests for the probabilistic quality measures (Definitions 3.4-3.8)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measures import (
    high_quality_quorums,
    high_quality_weight,
    inflate_with_singletons,
    pairwise_intersection_probability,
    per_quorum_intersection_probability,
    probabilistic_failure_probability,
    probabilistic_fault_tolerance,
)
from repro.exceptions import ConfigurationError, StrategyError
from repro.quorum.measures import fault_tolerance_exact


def heavy_light_system():
    """Two heavy intersecting quorums plus one light disconnected quorum."""
    quorums = (frozenset({0, 1, 2}), frozenset({2, 3, 4}), frozenset({5, 6}))
    weights = (0.475, 0.475, 0.05)
    return quorums, weights


class TestPairwiseIntersection:
    def test_exact_value(self):
        quorums, weights = heavy_light_system()
        # Intersecting pairs: all pairs among the two heavy quorums plus the
        # light quorum with itself.
        expected = (0.475 + 0.475) ** 2 + 0.05 ** 2
        assert pairwise_intersection_probability(quorums, weights) == pytest.approx(expected)

    def test_per_quorum_probabilities(self):
        quorums, weights = heavy_light_system()
        per_quorum = per_quorum_intersection_probability(quorums, weights)
        assert per_quorum[0] == pytest.approx(0.95)
        assert per_quorum[2] == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pairwise_intersection_probability([], [])
        with pytest.raises(StrategyError):
            pairwise_intersection_probability([frozenset({0})], [0.5])
        with pytest.raises(StrategyError):
            pairwise_intersection_probability([frozenset({0})], [1.0, 0.0])


class TestHighQualityQuorums:
    def test_default_delta_is_sqrt_epsilon(self):
        quorums, weights = heavy_light_system()
        selected = high_quality_quorums(quorums, weights)
        assert frozenset({0, 1, 2}) in selected
        assert frozenset({2, 3, 4}) in selected
        assert frozenset({5, 6}) not in selected

    def test_explicit_delta(self):
        quorums, weights = heavy_light_system()
        # With delta = 1 every quorum qualifies.
        assert len(high_quality_quorums(quorums, weights, delta=1.0)) == 3
        # With delta = 0 only quorums that intersect everything qualify.
        strict = high_quality_quorums(quorums, weights, delta=0.0)
        assert strict == ()

    def test_lemma_3_5_weight_bound(self):
        # P(Q in R) >= 1 - eps/delta.
        quorums, weights = heavy_light_system()
        epsilon = 1.0 - pairwise_intersection_probability(quorums, weights)
        delta = math.sqrt(epsilon)
        weight = high_quality_weight(quorums, weights, delta)
        assert weight >= 1.0 - epsilon / delta - 1e-12

    def test_delta_validation(self):
        quorums, weights = heavy_light_system()
        with pytest.raises(ConfigurationError):
            high_quality_quorums(quorums, weights, delta=1.5)

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lemma_3_5_property(self, quorum_list):
        weights = [1.0 / len(quorum_list)] * len(quorum_list)
        epsilon = 1.0 - pairwise_intersection_probability(quorum_list, weights)
        if epsilon <= 0.0:
            return
        delta = math.sqrt(epsilon)
        weight = high_quality_weight(quorum_list, weights, delta)
        assert weight >= 1.0 - epsilon / delta - 1e-9


class TestInflationResistance:
    def test_strict_measures_can_be_gamed_but_probabilistic_cannot(self):
        # Section 3.2's argument: adding rarely used singletons inflates the
        # *strict* fault tolerance to n but barely moves the probabilistic one.
        quorums, weights = heavy_light_system()
        quorums = quorums[:2]
        weights = (0.5, 0.5)
        n = 7
        base_ft = probabilistic_fault_tolerance(quorums, weights, n)

        inflated_quorums, inflated_weights = inflate_with_singletons(
            quorums, weights, n, gamma=1e-6
        )
        # Strict measure on the inflated system: hitting every quorum now
        # requires hitting every singleton, i.e. all n servers.
        assert fault_tolerance_exact(inflated_quorums, n) == n
        # Probabilistic measure: unchanged (the singletons are not high quality).
        inflated_ft = probabilistic_fault_tolerance(inflated_quorums, inflated_weights, n)
        assert inflated_ft == base_ft

    def test_epsilon_essentially_unchanged_by_inflation(self):
        quorums, weights = heavy_light_system()
        eps_before = 1.0 - pairwise_intersection_probability(quorums, weights)
        inflated_quorums, inflated_weights = inflate_with_singletons(
            quorums, weights, 7, gamma=1e-6
        )
        eps_after = 1.0 - pairwise_intersection_probability(inflated_quorums, inflated_weights)
        assert eps_after == pytest.approx(eps_before, abs=1e-4)

    def test_gamma_validation(self):
        quorums, weights = heavy_light_system()
        with pytest.raises(ConfigurationError):
            inflate_with_singletons(quorums, weights, 7, gamma=0.0)


class TestProbabilisticFaultToleranceAndFailure:
    def test_fault_tolerance_of_symmetric_system(self):
        # For a small uniform family every quorum is high quality, and the
        # transversal matches the strict computation.
        import itertools

        quorums = [frozenset(c) for c in itertools.combinations(range(5), 3)]
        weights = [1.0 / len(quorums)] * len(quorums)
        assert probabilistic_fault_tolerance(quorums, weights, 5) == 3

    def test_failure_probability_extremes(self):
        quorums, weights = heavy_light_system()
        assert probabilistic_failure_probability(quorums, weights, 7, 0.0, trials=500) == 0.0
        assert probabilistic_failure_probability(quorums, weights, 7, 1.0, trials=500) == 1.0

    def test_failure_probability_ignores_low_quality_quorums(self):
        # Crashing only server 2 kills both high quality quorums even though
        # the light quorum {5,6} survives; Definition 3.8 counts that as failure.
        quorums, weights = heavy_light_system()
        # Deterministic check via the hitting structure instead of sampling:
        assert probabilistic_fault_tolerance(quorums, weights, 7) == 1

    def test_validation(self):
        quorums, weights = heavy_light_system()
        with pytest.raises(ConfigurationError):
            probabilistic_failure_probability(quorums, weights, 7, 1.5)
        with pytest.raises(ConfigurationError):
            probabilistic_failure_probability(quorums, weights, 7, 0.5, trials=0)
        with pytest.raises(ConfigurationError):
            probabilistic_fault_tolerance([frozenset({9})], [1.0], 5)
