"""Tests for (b, ε)-masking quorum systems Rk(n, q) (Section 5)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intersection import masking_epsilon_exact
from repro.core.bounds import masking_load_lower_bound, strict_load_lower_bound
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_basic_parameters(self, masking_system):
        system = masking_system
        assert system.n == 100
        assert system.byzantine_threshold == 5
        assert system.threshold == pytest.approx(
            system.quorum_size ** 2 / (2 * system.n)
        )
        assert system.read_threshold == math.ceil(system.threshold)
        assert "Rk(" in system.describe()

    def test_epsilon_matches_exact_formula(self, masking_system):
        system = masking_system
        assert system.epsilon == pytest.approx(
            masking_epsilon_exact(100, system.quorum_size, 5, system.threshold)
        )
        assert system.epsilon <= 1e-3

    def test_threshold_separates_expectations(self, masking_system):
        system = masking_system
        e_faulty, e_correct = system.expectations()
        assert e_faulty < system.threshold < e_correct
        assert system.threshold_is_separating()

    def test_custom_threshold(self):
        system = ProbabilisticMaskingSystem(100, 40, 5, threshold=12.0)
        assert system.threshold == 12.0
        assert system.read_threshold == 12
        # With a non-default threshold the closed-form bound does not apply,
        # so epsilon_bound falls back to the exact value.
        assert system.epsilon_bound() == pytest.approx(system.epsilon)

    def test_theorem_5_10_bound_dominates(self):
        # Default threshold, ell = q/b > 2: the closed form must hold.
        for n, b, ell in ((400, 10, 4), (400, 20, 3), (625, 12, 5)):
            system = ProbabilisticMaskingSystem.from_ell_times_b(n, ell, b)
            assert system.ell_over_b > 2
            assert system.epsilon <= system.epsilon_bound() + 1e-12

    def test_lemma_bounds_dominate_decomposition(self):
        system = ProbabilisticMaskingSystem.from_ell_times_b(400, 4.0, 10)
        bound_x, bound_y = system.lemma_bounds()
        decomposition = system.error_decomposition()
        assert decomposition.p_too_many_faulty <= bound_x + 1e-12
        assert decomposition.p_too_few_correct <= bound_y + 1e-12

    def test_from_ell_conventions(self):
        by_b = ProbabilisticMaskingSystem.from_ell_times_b(100, 4.0, 5)
        assert by_b.quorum_size == 20
        by_sqrt = ProbabilisticMaskingSystem.from_ell(100, 4.0, 5)
        assert by_sqrt.quorum_size == 40
        assert by_sqrt.ell_over_sqrt_n == pytest.approx(4.0)

    def test_from_ell_times_b_requires_ell_above_two(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMaskingSystem.from_ell_times_b(100, 2.0, 5)

    def test_for_epsilon(self):
        system = ProbabilisticMaskingSystem.for_epsilon(225, 7, 1e-3)
        assert system.epsilon <= 1e-3

    def test_for_epsilon_impossible(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMaskingSystem.for_epsilon(20, 9, 1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMaskingSystem(100, 96, 5)  # q > n - b
        with pytest.raises(ConfigurationError):
            ProbabilisticMaskingSystem(100, 40, 0)
        with pytest.raises(ConfigurationError):
            ProbabilisticMaskingSystem(100, 40, 5, threshold=0.0)


class TestBreakingStrictLimits:
    def test_tolerates_more_than_a_quarter(self):
        # Strict masking systems stop at b <= (n-1)/4; Rk works for b < n/2.
        n = 900
        big_b = 250  # well above the strict ceiling (n-1)/4 = 224
        system = ProbabilisticMaskingSystem(n, 600, big_b)
        assert big_b > (n - 1) // 4
        assert system.epsilon < 0.05

    def test_beats_strict_masking_load_for_large_b(self):
        # Section 5.5: for b = omega(sqrt(n)) a constant ell gives load O(b/n)
        # which beats the strict bound sqrt((2b+1)/n).
        n = 900
        b = 90  # omega(sqrt(n)) territory for this concrete size
        system = ProbabilisticMaskingSystem.from_ell_times_b(n, 3.0, b)
        assert system.load() < strict_load_lower_bound(n, b, "masking")

    def test_respects_probabilistic_load_lower_bound(self):
        # Theorem 5.5: L >= ((1-2eps)/(1-eps)) b/n.
        n, b = 400, 20
        system = ProbabilisticMaskingSystem.from_ell_times_b(n, 4.0, b)
        bound = masking_load_lower_bound(n, b, system.epsilon)
        assert system.load() >= bound - 1e-12

    def test_paper_headline_example_shape(self):
        # "a system that can mask up to b = sqrt(n) Byzantine failures with a
        # load of only O(n^-0.3)": check the direction for a concrete n.
        n = 900
        b = int(math.sqrt(n))
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, 1e-3)
        strict_bound = math.sqrt((2 * b + 1) / n)
        assert system.load() < 3 * strict_bound  # same ballpark or better
        assert system.epsilon <= 1e-3


class TestMeasures:
    def test_load_fault_tolerance_failure_probability(self, masking_system):
        system = masking_system
        assert system.load() == pytest.approx(system.quorum_size / 100)
        assert system.fault_tolerance() == 100 - system.quorum_size + 1
        assert system.failure_probability(0.0) == 0.0
        assert system.failure_probability(1.0) == 1.0
        assert system.failure_probability(0.4) <= system.failure_probability_bound(0.4) + 1e-12

    def test_profile(self, masking_system):
        profile = masking_system.profile()
        assert profile.byzantine_threshold == 5
        assert profile.quorum_size == masking_system.quorum_size

    def test_sample_and_live_quorum(self, masking_system, rng):
        system = masking_system
        assert len(system.sample_quorum(rng)) == system.quorum_size
        assert system.find_live_quorum(set(range(100))) is not None
        assert system.find_live_quorum(set(range(3))) is None

    @given(st.integers(min_value=20, max_value=200), st.data())
    @settings(max_examples=30, deadline=None)
    def test_invariants_for_valid_parameters(self, n, data):
        # Keep 2b + 1 <= n - b so that the quorum-size range is never empty.
        b = data.draw(st.integers(min_value=1, max_value=max(1, (n - 1) // 3)))
        q = data.draw(st.integers(min_value=min(2 * b + 1, n - b), max_value=n - b))
        system = ProbabilisticMaskingSystem(n, q, b)
        assert 0.0 <= system.epsilon <= 1.0
        assert system.fault_tolerance() > b
        assert system.read_threshold >= 1
