"""Tests for the load lower bounds and Table 1."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    construction_beats_strict_dissemination_load,
    construction_beats_strict_masking_load,
    corollary_3_12_load_bound,
    lemma_5_4_quorum_size_probability,
    masking_load_lower_bound,
    naor_wool_load_bound,
    probabilistic_load_lower_bound,
    strict_load_lower_bound,
    strict_resilience_bound,
    table1_bounds,
)
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError


class TestStrictBounds:
    def test_table1_formulas(self):
        n, b = 100, 4
        rows = table1_bounds(n, b)
        assert rows["strict"].load_lower_bound == pytest.approx(0.1)
        assert rows["dissemination"].load_lower_bound == pytest.approx(math.sqrt(5 / 100))
        assert rows["masking"].load_lower_bound == pytest.approx(0.3)
        assert rows["strict"].max_resilience is None
        assert rows["dissemination"].max_resilience == 33
        assert rows["masking"].max_resilience == 24

    def test_strict_load_lower_bound_kinds(self):
        assert strict_load_lower_bound(400) == pytest.approx(0.05)
        assert strict_load_lower_bound(400, 9, "dissemination") == pytest.approx(
            math.sqrt(10 / 400)
        )
        assert strict_load_lower_bound(400, 9, "masking") == pytest.approx(
            math.sqrt(19 / 400)
        )
        with pytest.raises(ConfigurationError):
            strict_load_lower_bound(400, 9, "bogus")

    def test_resilience_bounds(self):
        assert strict_resilience_bound(100, "dissemination") == 33
        assert strict_resilience_bound(100, "masking") == 24
        assert strict_resilience_bound(100, "strict") is None
        with pytest.raises(ConfigurationError):
            strict_resilience_bound(100, "bogus")

    def test_naor_wool_bound(self):
        assert naor_wool_load_bound(100, 10) == pytest.approx(0.1)
        assert naor_wool_load_bound(100, 4) == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            naor_wool_load_bound(100, 0)


class TestProbabilisticBounds:
    def test_theorem_3_9_holds_for_uniform_construction(self):
        # The construction's load q/n must respect the bound computed from its
        # own epsilon and expected quorum size.
        for n, q in ((25, 10), (100, 23), (400, 50)):
            system = UniformEpsilonIntersectingSystem(n, q)
            bound = probabilistic_load_lower_bound(n, system.epsilon, q)
            assert system.load() >= bound - 1e-12

    def test_corollary_3_12(self):
        for n in (25, 100, 900):
            system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
            assert system.load() >= corollary_3_12_load_bound(n, system.epsilon) - 1e-12
        # The bound approaches 1/sqrt(n) as epsilon -> 0.
        assert corollary_3_12_load_bound(100, 0.0) == pytest.approx(0.1)

    def test_theorem_5_5_holds_for_masking_construction(self):
        for n, b, ell in ((400, 20, 4.0), (900, 30, 3.0)):
            system = ProbabilisticMaskingSystem.from_ell_times_b(n, ell, b)
            bound = masking_load_lower_bound(n, b, system.epsilon)
            assert system.load() >= bound - 1e-12

    def test_masking_bound_degenerates_for_large_epsilon(self):
        assert masking_load_lower_bound(100, 10, 0.6) == 0.0

    def test_lemma_5_4(self):
        assert lemma_5_4_quorum_size_probability(0.0) == 1.0
        assert lemma_5_4_quorum_size_probability(0.1) == pytest.approx(0.8 / 0.9)
        assert lemma_5_4_quorum_size_probability(0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            probabilistic_load_lower_bound(0, 0.1, 5)
        with pytest.raises(ConfigurationError):
            probabilistic_load_lower_bound(10, 1.5, 5)
        with pytest.raises(ConfigurationError):
            probabilistic_load_lower_bound(10, 0.1, 0)
        with pytest.raises(ConfigurationError):
            masking_load_lower_bound(10, 0, 0.1)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=80, deadline=None)
    def test_corollary_dominated_by_theorem(self, n, epsilon):
        # Corollary 3.12 follows from Theorem 3.9, so it can never exceed the
        # theorem's bound at the optimal expected quorum size sqrt(n)(1-sqrt(eps)).
        expected_size = max(1e-9, math.sqrt(n) * (1 - math.sqrt(epsilon)))
        theorem = probabilistic_load_lower_bound(n, epsilon, expected_size)
        corollary = corollary_3_12_load_bound(n, epsilon)
        assert corollary <= theorem + 1e-9


class TestComparisons:
    def test_beats_strict_masking_load_helper(self):
        n, b = 900, 90
        system = ProbabilisticMaskingSystem.from_ell_times_b(n, 3.0, b)
        assert construction_beats_strict_masking_load(n, b, system.load())
        assert not construction_beats_strict_masking_load(n, b, 1.0)

    def test_beats_strict_dissemination_load_helper(self):
        n, b = 900, 300
        assert construction_beats_strict_dissemination_load(n, b, 0.1)
        assert not construction_beats_strict_dissemination_load(n, b, 0.9)

    def test_table1_validation(self):
        with pytest.raises(ConfigurationError):
            table1_bounds(0, 1)
        with pytest.raises(ConfigurationError):
            table1_bounds(10, -1)
