"""Tests for the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_core_constructions_importable_from_top_level(self):
        system = repro.UniformEpsilonIntersectingSystem.for_epsilon(100, 1e-3)
        assert isinstance(system, repro.ProbabilisticQuorumSystem)
        dissemination = repro.ProbabilisticDisseminationSystem.for_epsilon(100, 10, 1e-2)
        assert dissemination.byzantine_threshold == 10
        masking = repro.ProbabilisticMaskingSystem.for_epsilon(100, 5, 1e-2)
        assert masking.read_threshold >= 1

    def test_strict_baselines_importable_from_top_level(self):
        assert repro.MajorityQuorumSystem(25).quorum_size == 13
        assert repro.GridQuorumSystem(25).fault_tolerance() == 5
        assert repro.ThresholdMaskingQuorumSystem(25, 2).quorum_size == 15

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.StrategyError, repro.ConfigurationError)
        assert issubclass(repro.VerificationError, repro.ProtocolError)
        with pytest.raises(repro.ReproError):
            repro.UniformEpsilonIntersectingSystem(10, 0)

    def test_profile_round_trip(self):
        system = repro.UniformEpsilonIntersectingSystem(25, 10)
        profile = system.profile()
        assert isinstance(profile, repro.SystemProfile)
        row = profile.as_row()
        assert row[1] == 25 and row[2] == 10

    def test_bounds_helpers(self):
        assert repro.strict_load_lower_bound(100) == pytest.approx(0.1)
        assert repro.strict_resilience_bound(100, "masking") == 24
        assert repro.minimal_quorum_size_for_epsilon(100, 1e-3) == 23

    def test_docstring_mentions_the_paper(self):
        assert "Probabilistic Quorum Systems" in repro.__doc__
