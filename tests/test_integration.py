"""Cross-module integration scenarios.

Each test here wires several subsystems together the way a downstream user
would — quorum system + cluster + protocol + failure injection + diffusion +
probing — and checks an end-to-end property rather than a single module's
contract.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ProbabilisticDisseminationSystem,
    ProbabilisticMaskingSystem,
    UniformEpsilonIntersectingSystem,
)
from repro.analysis.repeated_access import union_bound_over_operations
from repro.apps import LocationService, VotingService
from repro.core.calibration import minimal_quorum_size_for_epsilon
from repro.protocol import (
    DisseminationRegister,
    MaskingRegister,
    ProbabilisticRegister,
    QuorumLock,
    SignatureScheme,
    WriteBackRegister,
)
from repro.protocol.timestamps import Timestamp
from repro.quorum.probe import GreedyProbeStrategy, UniformProbeStrategy, oracle_from_alive_set
from repro.simulation import Cluster, DiffusionEngine, FailurePlan
from repro.simulation.failures import CrashEvent


class TestCrashRecoveryScenario:
    def test_register_survives_a_rolling_outage(self):
        """Write, crash a wave of servers, read, recover, read again."""
        n = 60
        system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
        schedule = [CrashEvent(time=10.0, server=s) for s in range(20)] + [
            CrashEvent(time=50.0, server=s, recover=True) for s in range(20)
        ]
        cluster = Cluster(n, failure_plan=FailurePlan.none().with_schedule(schedule), seed=1)
        register = ProbabilisticRegister(system, cluster, rng=random.Random(1))

        write = register.write("before-outage")
        cluster.advance_time(20.0)          # the outage hits
        assert len(cluster.crashed_servers) == 20
        during = register.read()
        assert during.value in ("before-outage", None)

        cluster.advance_time(40.0)          # servers recover (state intact)
        assert not cluster.crashed_servers
        after = register.read()
        assert after.value == "before-outage"
        assert after.timestamp == write.timestamp

    def test_probing_finds_quorums_that_reads_then_use(self):
        """Use the prober to discover a live quorum, then read from exactly it."""
        n = 49
        system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
        plan = FailurePlan.random_crashes(n, 15, rng=random.Random(3))
        cluster = Cluster(n, failure_plan=plan, seed=3)
        register = ProbabilisticRegister(system, cluster, rng=random.Random(3))
        register.write("payload")

        prober = UniformProbeStrategy(n, system.quorum_size)
        result = prober.probe(oracle_from_alive_set(cluster.alive_servers()), random.Random(3))
        assert result.found
        replies = cluster.read_quorum(result.quorum, "x")
        assert len(replies) <= len(result.quorum)
        # Every probed-live server actually answers.
        assert set(replies) <= set(result.quorum)


class TestByzantineScenario:
    def test_signed_register_with_gossip_repair(self):
        """Self-verifying data + gossip: forgeries never spread, freshness does."""
        n, b = 50, 10
        system = ProbabilisticDisseminationSystem.for_epsilon(n, b, 1e-2)
        scheme = SignatureScheme(b"integration")
        plan = FailurePlan.colluding_forgers(
            n, b, "FORGED", Timestamp.forged_maximum(), rng=random.Random(4)
        )
        cluster = Cluster(n, failure_plan=plan, seed=4)
        register = DisseminationRegister(system, cluster, signatures=scheme, rng=random.Random(4))
        write = register.write("genuine")

        def verify(variable, stored):
            return isinstance(stored.timestamp, Timestamp) and scheme.verify(
                variable, stored.value, stored.timestamp, stored.signature
            )

        engine = DiffusionEngine(cluster, fanout=3, verify=verify, rng=random.Random(4))
        engine.run_rounds(6, ["x"])
        # After gossip, every correct server holds the genuine value.
        for server_id in cluster.correct_servers():
            stored = cluster.server(server_id).storage.get("x")
            assert stored is not None and stored.value == "genuine"
        # And reads are now deterministic despite the forgers.
        for _ in range(10):
            outcome = register.read()
            assert outcome.value == "genuine"
            assert outcome.timestamp == write.timestamp

    def test_lock_protects_a_masking_register_update(self):
        """A lock and a register sharing one cluster and one quorum system."""
        n, b = 64, 6
        system = ProbabilisticMaskingSystem.for_epsilon(n, b, 1e-2)
        plan = FailurePlan.colluding_forgers(
            n, b, "FORGED", Timestamp.forged_maximum(), rng=random.Random(5)
        )
        cluster = Cluster(n, failure_plan=plan, seed=5)
        lock = QuorumLock(system, cluster, name="writer-election", rng=random.Random(5))
        register = MaskingRegister(system, cluster, name="ledger", rng=random.Random(6))

        assert lock.acquire(client_id=1).acquired
        register.write("entry-1")
        assert not lock.acquire(client_id=2).acquired
        outcome = register.read()
        assert outcome.value == "entry-1"
        lock.release(client_id=1)
        assert lock.acquire(client_id=2).acquired


class TestApplicationScenario:
    def test_voting_and_location_share_a_cluster(self):
        """Two applications can coexist on one cluster without interference."""
        n = 80
        rng = random.Random(7)
        plain = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-3)
        cluster = Cluster(n, failure_plan=FailurePlan.random_crashes(n, 10, rng=rng), seed=7)

        voting = VotingService(plain, cluster, rng=rng)
        location = LocationService(plain, cluster, gossip_fanout=3, rng=rng)

        for voter in range(30):
            assert voting.cast_vote(f"voter-{voter}", station_id=voter % 5).accepted
        location.update_location("phone-1", "cell-A")
        location.update_location("phone-1", "cell-B")
        location.run_gossip(2)

        assert not voting.cast_vote("voter-3", station_id=9).accepted
        answer = location.locate("phone-1")
        assert answer.found and answer.cell == "cell-B"
        assert voting.audit().duplicates_admitted == 0

    def test_budgeted_calibration_end_to_end(self):
        """Size a system from an end-to-end inconsistency budget and verify it."""
        n = 144
        operations = 2000
        total_budget = 0.02
        per_operation = total_budget / operations
        q = minimal_quorum_size_for_epsilon(n, per_operation)
        system = UniformEpsilonIntersectingSystem(n, q)
        assert system.epsilon <= per_operation
        assert union_bound_over_operations(system.epsilon, operations) <= total_budget
        # The budgeted system still has Theta(sqrt(n)) quorums.
        assert q <= 4 * (n ** 0.5)

    def test_write_back_register_with_crashes(self):
        """Read repair keeps data reachable even as the original writers' quorum dies."""
        n = 49
        system = UniformEpsilonIntersectingSystem.for_epsilon(n, 1e-2)
        cluster = Cluster(n, seed=9)
        register = WriteBackRegister(system, cluster, rng=random.Random(9))
        write = register.write("durable")
        # Several repairing reads spread the value...
        for _ in range(4):
            register.read()
        # ...then the entire original write quorum crashes.
        for server in write.quorum:
            cluster.crash(server)
        outcome = register.read()
        assert outcome.value == "durable"
