"""Unit tests for the quorum-trace records and the sampling collector."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.trace import DISPOSITIONS, QuorumTrace, RpcSpan, Tracer


class TestRpcSpan:
    def test_elapsed_and_dict_form(self):
        span = RpcSpan(3, "read", 1.0, 1.25, "ok")
        assert span.elapsed == pytest.approx(0.25)
        assert span.to_dict() == {
            "server": 3,
            "method": "read",
            "started_at": 1.0,
            "ended_at": 1.25,
            "elapsed": pytest.approx(0.25),
            "disposition": "ok",
        }

    def test_every_documented_disposition_is_a_string(self):
        assert all(isinstance(name, str) for name in DISPOSITIONS)
        assert set(DISPOSITIONS) >= {"ok", "dropped", "timeout", "silent", "unsent"}


class TestQuorumTrace:
    def test_records_spans_and_counts_dispositions(self):
        trace = QuorumTrace(7, "read", client_id="c1", variable="x", shard=0)
        trace.record(1, "read", 0.0, 0.1, "ok")
        trace.record(2, "read", 0.0, 0.2, "ok")
        trace.record(3, "read", 0.0, 0.5, "timeout")
        assert trace.span_dispositions() == {"ok": 2, "timeout": 1}

    def test_finish_stamps_status_and_elapsed(self):
        trace = QuorumTrace(1, "write")
        assert trace.elapsed is None
        trace.finish("unavailable")
        assert trace.status == "unavailable"
        assert trace.elapsed is not None and trace.elapsed >= 0.0

    def test_dict_form_is_json_serialisable(self):
        trace = QuorumTrace(9, "read", variable="k0")
        trace.quorum = (1, 2, 3)
        trace.record(1, "read", 0.0, 0.1, "ok")
        trace.selection = {"rule": "AsyncRegister", "verdict": "selected"}
        trace.classification = "fresh"
        trace.context = {"lock": "leader", "step": "verify"}
        trace.finish()
        line = json.dumps(trace.to_dict(), sort_keys=True)
        decoded = json.loads(line)
        assert decoded["trace_id"] == 9
        assert decoded["quorum"] == [1, 2, 3]
        assert decoded["classification"] == "fresh"
        assert decoded["context"] == {"lock": "leader", "step": "verify"}
        assert decoded["spans"][0]["disposition"] == "ok"


class TestTracer:
    def test_rate_zero_never_samples_and_never_draws(self):
        tracer = Tracer(sample_rate=0.0, seed=1)
        state = tracer._rng.getstate()
        assert all(tracer.begin("read") is None for _ in range(50))
        assert tracer._rng.getstate() == state  # no draw at the endpoint
        assert tracer.started == 0 and tracer.sampled_out == 0

    def test_rate_one_samples_everything_without_drawing(self):
        tracer = Tracer(sample_rate=1.0, seed=1)
        state = tracer._rng.getstate()
        traces = [tracer.begin("read") for _ in range(10)]
        assert all(trace is not None for trace in traces)
        assert tracer._rng.getstate() == state
        assert tracer.started == 10

    def test_fractional_rate_samples_roughly_that_fraction(self):
        tracer = Tracer(sample_rate=0.3, seed=5)
        sampled = sum(tracer.begin("read") is not None for _ in range(2000))
        assert 450 < sampled < 750
        assert tracer.started + tracer.sampled_out == 2000

    def test_ids_are_unique_and_offset_by_the_base(self):
        tracer = Tracer(sample_rate=1.0, id_base=1 << 40)
        ids = [tracer.begin("read").trace_id for _ in range(5)]
        assert len(set(ids)) == 5
        assert all(trace_id >= (1 << 40) for trace_id in ids)

    def test_sampling_stream_is_private(self):
        # Seeding a workload RNG with the tracer's root must not couple the
        # two streams (the salt keeps them apart).
        workload = random.Random(42)
        tracer = Tracer(sample_rate=0.5, seed=42)
        before = [workload.random() for _ in range(5)]
        for _ in range(100):
            tracer.begin("read")
        workload = random.Random(42)
        after = [workload.random() for _ in range(5)]
        assert before == after

    def test_retention_cap_counts_overflow(self):
        tracer = Tracer(sample_rate=1.0, max_traces=2)
        for _ in range(5):
            trace = tracer.begin("read")
            tracer.finish(trace)
        assert len(tracer.traces) == 2
        assert tracer.overflowed == 3

    def test_finish_closes_and_retains(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin("write", client_id="w1", variable="x", shard=2)
        tracer.finish(trace, status="unavailable")
        assert tracer.traces == [trace]
        assert trace.status == "unavailable"
        assert tracer.to_dicts()[0]["shard"] == 2

    def test_invalid_rates_are_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(max_traces=-1)
