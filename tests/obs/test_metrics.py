"""Unit tests for the counter/gauge/histogram registry and snapshot merge."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_only_increases(self):
        counter = Counter("rpcs")
        counter.inc()
        counter.inc(4)
        assert counter.to_value() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_point_in_time(self):
        gauge = Gauge("nodes")
        gauge.set(36)
        gauge.set(12)
        assert gauge.to_value() == 12.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        histogram.observe_many([0.005, 0.05, 0.05, 0.5, 5.0])
        exported = histogram.to_value()
        assert exported["buckets"] == [0.01, 0.1, 1.0]
        assert exported["cumulative"] == [1, 3, 4]  # the 5.0 sample overflows
        assert exported["count"] == 5
        assert exported["sum"] == pytest.approx(5.605)

    def test_histogram_quantiles_report_bucket_bounds(self):
        histogram = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        histogram.observe_many([0.005] * 90 + [0.5] * 10)
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.99) == 1.0
        assert Histogram("empty").quantile(0.5) == 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("rpcs") is registry.counter("rpcs")
        assert registry.gauge("nodes") is registry.gauge("nodes")
        assert registry.histogram("lat") is registry.histogram("lat")

    def test_snapshot_is_labelled_json_and_picklable(self):
        registry = MetricsRegistry(labels={"shard": 0, "process": "worker-1"})
        registry.counter("rpcs").inc(3)
        registry.gauge("nodes").set(36)
        registry.histogram("lat").observe(0.002)
        snapshot = registry.to_dict()
        assert snapshot["labels"] == {"shard": 0, "process": "worker-1"}
        assert snapshot["counters"] == {"rpcs": 3}
        # Snapshots ride the cluster's multiprocessing pipes and JSON dumps.
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_default_histogram_uses_the_shared_latency_buckets(self):
        registry = MetricsRegistry()
        assert registry.histogram("lat").buckets == LATENCY_BUCKETS


class TestMerge:
    def test_counters_and_gauges_sum(self):
        a = MetricsRegistry(labels={"worker": 0})
        b = MetricsRegistry(labels={"worker": 1})
        a.counter("rpcs").inc(2)
        b.counter("rpcs").inc(3)
        b.counter("drops").inc(1)
        a.gauge("nodes").set(36)
        b.gauge("nodes").set(36)
        merged = merge_snapshots([a.to_dict(), b.to_dict()])
        assert merged["counters"] == {"rpcs": 5, "drops": 1}
        assert merged["gauges"] == {"nodes": 72.0}
        assert merged["labels"] == [{"worker": 0}, {"worker": 1}]

    def test_histograms_merge_elementwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", buckets=(0.01, 0.1)).observe(0.005)
        b.histogram("lat", buckets=(0.01, 0.1)).observe_many([0.05, 0.05])
        merged = merge_snapshots([a.to_dict(), b.to_dict()])
        assert merged["histograms"]["lat"]["cumulative"] == [1, 3]
        assert merged["histograms"]["lat"]["count"] == 3

    def test_mismatched_bucket_layouts_refuse_to_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", buckets=(0.01,)).observe(0.005)
        b.histogram("lat", buckets=(0.02,)).observe(0.005)
        with pytest.raises(ValueError):
            merge_snapshots([a.to_dict(), b.to_dict()])

    def test_empty_merge_is_an_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged == {
            "labels": [],
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
