"""Unit tests for the online ε-monitor."""

from __future__ import annotations

import pytest

from repro.obs.monitor import ERROR_LABELS, EpsilonMonitor


class TestObservation:
    def test_only_stale_and_fabricated_count_as_errors(self):
        assert ERROR_LABELS == {"stale", "fabricated"}
        monitor = EpsilonMonitor(0.1, window=10, min_samples=1)
        for label in ("fresh", "empty", "concurrent"):
            monitor.observe(label)
        assert monitor.errors == 0
        monitor.observe("stale")
        monitor.observe("fabricated")
        assert monitor.errors == 2
        assert monitor.observed == 5

    def test_no_alert_before_min_samples(self):
        monitor = EpsilonMonitor(0.0, slack=0.0, window=100, min_samples=50)
        for _ in range(49):
            assert monitor.observe("stale") is None
        assert monitor.alerts == []
        # The 50th errorful sample crosses min_samples and fires.
        assert monitor.observe("stale") is not None

    def test_benign_stream_never_alerts(self):
        monitor = EpsilonMonitor(0.05, window=50, min_samples=10)
        for _ in range(500):
            assert monitor.observe("fresh") is None
        assert monitor.alerts == []
        assert monitor.window_rate == 0.0
        assert monitor.total_rate == 0.0

    def test_alert_record_is_structured(self):
        monitor = EpsilonMonitor(0.1, slack=0.05, window=20, min_samples=5)
        alert = None
        for _ in range(20):
            alert = monitor.observe("stale") or alert
        assert alert is not None
        assert alert["kind"] == "epsilon-exceeded"
        assert alert["epsilon"] == 0.1
        assert alert["bound"] == pytest.approx(0.15)
        assert alert["observed_rate"] > alert["bound"]
        assert monitor.alerts[0] is alert

    def test_alerts_are_rate_limited_per_window(self):
        monitor = EpsilonMonitor(0.0, slack=0.0, window=10, min_samples=5)
        for _ in range(30):  # three windows of sustained violation
            monitor.observe("stale")
        assert len(monitor.alerts) == 3

    def test_recovery_rearms_immediately(self):
        monitor = EpsilonMonitor(0.0, slack=0.0, window=10, min_samples=5)
        for _ in range(10):
            monitor.observe("stale")
        assert len(monitor.alerts) == 1
        for _ in range(10):  # flush the window clean: rate back to zero
            monitor.observe("fresh")
        assert monitor.window_rate == 0.0
        armed = len(monitor.alerts)
        monitor.observe("stale")  # one error in a 10-wide window: 10% > 0%
        assert len(monitor.alerts) == armed + 1  # no rate-limit wait after recovery

    def test_sliding_window_forgets_old_errors(self):
        monitor = EpsilonMonitor(0.5, window=4, min_samples=1)
        for _ in range(4):
            monitor.observe("stale")
        assert monitor.window_rate == 1.0
        for _ in range(4):
            monitor.observe("fresh")
        assert monitor.window_rate == 0.0
        assert monitor.total_rate == 0.5


class TestConstruction:
    def test_for_scenario_reads_the_system_epsilon(self):
        class System:
            epsilon = 0.25

        class Scenario:
            system = System()

        monitor = EpsilonMonitor.for_scenario(Scenario(), slack=0.1)
        assert monitor.epsilon == 0.25
        assert monitor.bound == pytest.approx(0.35)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EpsilonMonitor(-0.1)
        with pytest.raises(ValueError):
            EpsilonMonitor(1.5)
        with pytest.raises(ValueError):
            EpsilonMonitor(0.1, slack=-0.01)
        with pytest.raises(ValueError):
            EpsilonMonitor(0.1, window=0)
        with pytest.raises(ValueError):
            EpsilonMonitor(0.1, window=10, min_samples=11)

    def test_dict_form_summarises_state(self):
        monitor = EpsilonMonitor(0.1, window=10, min_samples=2)
        monitor.observe("fresh")
        monitor.observe("stale")
        state = monitor.to_dict()
        assert state["observed"] == 2
        assert state["errors"] == 1
        assert state["window_rate"] == pytest.approx(0.5)
        assert state["alerts"] == list(monitor.alerts)
