"""Tests for the service load harness."""

from __future__ import annotations

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.classification import OUTCOME_LABELS
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ReadOutcome, WriteOutcome
from repro.service.load import (
    FaultInjectionSpec,
    ServiceLoadSpec,
    classify_service_read,
    run_service_load,
)
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import ScenarioSpec

MASKING = ProbabilisticMaskingSystem(25, 10, 3)
PLAIN = UniformEpsilonIntersectingSystem(25, 8)


def small_spec(**overrides):
    defaults = dict(
        scenario=ScenarioSpec(system=MASKING),
        clients=20,
        reads_per_client=3,
        writes=5,
        seed=7,
    )
    defaults.update(overrides)
    return ServiceLoadSpec(**defaults)


class TestServiceLoadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceLoadSpec(scenario="not a scenario")
        with pytest.raises(ConfigurationError):
            small_spec(clients=0)
        with pytest.raises(ConfigurationError):
            small_spec(reads_per_client=0)
        with pytest.raises(ConfigurationError):
            small_spec(writes=0)
        with pytest.raises(ConfigurationError):
            small_spec(write_interval=-1.0)
        with pytest.raises(ConfigurationError):
            small_spec(dispatch="warp")
        with pytest.raises(ConfigurationError):
            small_spec(selection="fastest")
        with pytest.raises(ConfigurationError):
            small_spec(dispatch_window=-0.001)
        with pytest.raises(ConfigurationError):
            small_spec(quorum_pool=-1)
        with pytest.raises(ConfigurationError):
            FaultInjectionSpec(crash_count=-1)
        with pytest.raises(ConfigurationError):
            FaultInjectionSpec(interval=0.0)

    def test_latency_aware_refused_for_byzantine_scenarios(self):
        scenario = ScenarioSpec(
            system=MASKING,
            failure_model=FailureModel.colluding_forgers(
                3, "FORGED", Timestamp.forged_maximum()
            ),
        )
        with pytest.raises(ConfigurationError, match="latency-aware"):
            small_spec(scenario=scenario, selection="latency-aware")

    def test_totals_and_description(self):
        spec = small_spec()
        assert spec.total_ops == 20 * 3 + 5
        assert "clients=20" in spec.describe()


class TestClassifyServiceRead:
    WRITE = WriteOutcome(
        quorum=frozenset({0}), timestamp=Timestamp(2), acknowledged=frozenset({0})
    )
    HISTORY = {Timestamp(1): ("v", 0), Timestamp(2): ("v", 1), Timestamp(3): ("v", 2)}

    def outcome(self, value, timestamp):
        return ReadOutcome(
            value=value,
            timestamp=timestamp,
            quorum=frozenset({0}),
            reporting_servers=frozenset({0}),
            replies=1,
        )

    def test_matches_the_shared_classifier_for_settled_reads(self):
        assert classify_service_read(self.outcome(("v", 1), Timestamp(2)), self.WRITE, self.HISTORY) == "fresh"
        assert classify_service_read(self.outcome(("v", 0), Timestamp(1)), self.WRITE, self.HISTORY) == "stale"
        assert classify_service_read(self.outcome(None, None), self.WRITE, self.HISTORY) == "empty"
        forged = self.outcome("FORGED", Timestamp.forged_maximum())
        assert classify_service_read(forged, self.WRITE, self.HISTORY) == "fabricated"

    def test_concurrent_honest_write_is_not_a_violation(self):
        # Timestamp(3) outranks the settled write but is an issued honest
        # write: reading it concurrently is fresh, not fabricated.
        concurrent = self.outcome(("v", 2), Timestamp(3))
        assert classify_service_read(concurrent, self.WRITE, self.HISTORY) == "fresh"
        # A forgery tying that timestamp with the wrong value stays a violation.
        forged = self.outcome("FORGED", Timestamp(3))
        assert classify_service_read(forged, self.WRITE, self.HISTORY) == "fabricated"

    def test_old_timestamp_forgery_is_still_a_violation(self):
        # The shared classifier alone would call an honest-typed timestamp
        # below the settled write "stale"; the harness checks the issued
        # history, so a never-written pair is fabricated however old its
        # forged timestamp looks.
        forged_old = self.outcome("FORGED", Timestamp(1))
        assert classify_service_read(forged_old, self.WRITE, self.HISTORY) == "fabricated"

    def test_reads_before_the_first_settled_write(self):
        assert classify_service_read(self.outcome(None, None), None, {}) == "empty"
        issued = self.outcome(("v", 0), Timestamp(1))
        assert classify_service_read(issued, None, self.HISTORY) == "fresh"
        forged = self.outcome("FORGED", Timestamp.forged_maximum())
        assert classify_service_read(forged, None, self.HISTORY) == "fabricated"


class TestRunServiceLoad:
    def test_healthy_run_completes_every_operation(self):
        spec = small_spec()
        report = run_service_load(spec)
        assert report.reads_completed == 60
        assert report.writes_completed == 5
        assert report.operations == spec.total_ops
        assert sum(report.outcomes.values()) == report.reads_completed
        assert set(report.outcomes) == set(OUTCOME_LABELS)
        assert report.violations == 0
        assert report.write_failures == 0
        # Latency percentiles are ordered and populated.
        assert len(report.read_latencies) == 60
        assert report.read_latency(0.5) <= report.read_latency(0.99)
        assert report.throughput > 0
        assert "throughput" in report.render()

    def test_static_byzantine_failures_are_deployed(self):
        spec = small_spec(
            scenario=ScenarioSpec(
                system=MASKING,
                failure_model=FailureModel.colluding_forgers(
                    3, "FORGED", Timestamp.forged_maximum()
                ),
            ),
            clients=30,
        )
        report = run_service_load(spec)
        # b=3 < k=2?  No: k=2 and 3 forgers *can* vote a forgery through on
        # this loose system, but reads still complete and are all labelled.
        assert report.reads_completed == 90
        assert sum(report.outcomes.values()) == 90

    def test_live_fault_injection_crashes_and_recovers(self):
        spec = small_spec(
            clients=40,
            reads_per_client=5,
            latency=0.0005,
            rpc_timeout=0.01,
            fault_injection=FaultInjectionSpec(crash_count=4, interval=0.001),
        )
        report = run_service_load(spec)
        assert report.injected_crashes > 0
        assert report.reads_completed == 200
        # Churn forces at least some repair activity or timeouts.
        assert report.probe_fallbacks + report.rpc_timeouts > 0

    def test_dropping_transport_still_makes_progress(self):
        spec = small_spec(
            drop_probability=0.05,
            rpc_timeout=0.005,
        )
        report = run_service_load(spec)
        assert report.rpc_dropped > 0
        assert report.reads_completed == 60
        assert report.writes_completed + report.write_failures == 5

    def test_same_seed_same_outcome_counts(self):
        # Event-loop interleaving is deterministic for identical specs on a
        # loss-free zero-latency transport, so the whole report reproduces.
        first = run_service_load(small_spec())
        second = run_service_load(small_spec())
        assert first.outcomes == second.outcomes
        assert first.reads_completed == second.reads_completed

    def test_both_dispatch_modes_complete_the_same_workload(self):
        batched = run_service_load(small_spec(dispatch="batched"))
        per_rpc = run_service_load(small_spec(dispatch="per-rpc"))
        for report in (batched, per_rpc):
            assert report.reads_completed == 60
            assert report.writes_completed == 5
            assert report.violations == 0
        assert batched.dispatch_flushes > 0
        assert per_rpc.dispatch_flushes == 0
        # Coalescing: far fewer delivery events than RPCs.
        assert batched.dispatch_flushes < batched.rpc_calls / 5


class TestUvloopIntegration:
    def test_falls_back_to_stock_asyncio_when_uvloop_is_missing(self, monkeypatch):
        from repro.service import load as load_module

        monkeypatch.setattr(load_module, "_uvloop", None)
        assert load_module.active_loop_driver() == "asyncio"
        report = run_service_load(small_spec())
        assert report.loop_driver == "asyncio"
        assert report.reads_completed == 60

    def test_uses_uvloop_when_importable(self, monkeypatch):
        # Stand in for the optional dependency with an object exposing the
        # one attribute the harness uses, so the uvloop branch is exercised
        # without the package being installed.
        import asyncio

        from repro.service import load as load_module

        class FakeUvloop:
            new_event_loop = staticmethod(asyncio.new_event_loop)

        monkeypatch.setattr(load_module, "_uvloop", FakeUvloop)
        assert load_module.active_loop_driver() == "uvloop"
        report = run_service_load(small_spec())
        assert report.loop_driver == "uvloop"
        assert report.reads_completed == 60
