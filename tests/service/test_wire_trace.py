"""Property tests for the negotiated trace extension of the wire protocol.

The trace extension must be invisible unless both ends opt in:

* the **hello** offers codecs plus an extra ``"trace"`` token; a codec
  chooser that has never heard of the token picks the identical codec it
  would have picked without it (the token is not a codec);
* the **envelope** grows a sixth element only when a trace id is attached,
  and the traced request frame is byte-identical to encoding the 6-tuple
  generically — so payload semantics never depend on the fast path;
* a **traced client against an un-instrumented server** degrades cleanly:
  negotiation resolves to the plain codec, no 6-tuple ever hits the wire,
  and the RPCs behave exactly as untraced ones.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import Tracer
from repro.service.net import TcpDispatcher, TcpServiceServer, TcpTransport
from repro.service.node import ServiceNode
from repro.service.wire import (
    WIRE_CODECS,
    FrameDecoder,
    TRACE_TOKEN,
    choose_codec,
    encode_frame,
    encode_request_frame,
    hello_offers_trace,
    join_negotiated,
    offer_codecs,
    request_tail,
    split_negotiated,
)


def run(coroutine):
    return asyncio.run(coroutine)


request_ids = st.integers(min_value=0, max_value=2**62)
server_ids = st.integers(min_value=0, max_value=2**31)
trace_ids = st.integers(min_value=0, max_value=2**62)
methods = st.sampled_from(["read", "write", "ping"])
args_values = st.tuples(
    st.text(max_size=16), st.integers(min_value=-(2**40), max_value=2**40)
)


class TestTracedEnvelope:
    @settings(max_examples=50)
    @given(request_ids, server_ids, methods, args_values, trace_ids)
    def test_traced_fast_path_is_byte_identical_on_both_codecs(
        self, request_id, server, method, args, trace_id
    ):
        for codec in WIRE_CODECS:
            tail = request_tail(method, args, codec)
            fast = encode_request_frame(request_id, server, tail, trace_id=trace_id)
            generic = encode_frame(
                ("req", request_id, server, method, args, trace_id), codec
            )
            assert fast == generic

    @settings(max_examples=50)
    @given(request_ids, server_ids, methods, args_values, trace_ids)
    def test_traced_and_untraced_frames_decode_to_the_same_request(
        self, request_id, server, method, args, trace_id
    ):
        for codec in WIRE_CODECS:
            tail = request_tail(method, args, codec)
            decoder = FrameDecoder()
            plain = decoder.feed(
                encode_request_frame(request_id, server, tail)
            ) + decoder.feed(
                encode_request_frame(request_id, server, tail, trace_id=trace_id)
            )
            assert len(plain) == 2
            untraced, traced = plain
            # Identical payload semantics: the traced frame is the untraced
            # one plus the trailing id, nothing reinterpreted.
            assert tuple(traced[:5]) == tuple(untraced)
            assert traced[5] == trace_id

    @settings(max_examples=50)
    @given(request_ids, server_ids, methods, args_values)
    def test_no_trace_id_means_the_classic_five_tuple(
        self, request_id, server, method, args
    ):
        for codec in WIRE_CODECS:
            tail = request_tail(method, args, codec)
            frame = encode_request_frame(request_id, server, tail)
            assert frame == encode_frame(
                ("req", request_id, server, method, args), codec
            )


class TestHelloNegotiation:
    @settings(max_examples=50)
    @given(
        st.lists(st.sampled_from(sorted(WIRE_CODECS)), min_size=1, max_size=3),
        st.lists(st.sampled_from(sorted(WIRE_CODECS)), min_size=1, max_size=2),
    )
    def test_trace_token_never_changes_the_chosen_codec(self, offered, supported):
        plain = offer_codecs(offered)
        traced = offer_codecs(offered, trace=True)
        assert choose_codec(plain, supported) == choose_codec(traced, supported)

    def test_offer_appends_the_token_only_when_asked(self):
        assert offer_codecs(["binary", "json"]) == ["binary", "json"]
        assert offer_codecs(["binary"], trace=True) == ["binary", TRACE_TOKEN]
        assert hello_offers_trace(offer_codecs(["json"], trace=True))
        assert not hello_offers_trace(offer_codecs(["json"]))
        assert not hello_offers_trace("json")  # not a list: malformed hello

    def test_token_is_not_a_codec_to_an_old_server(self):
        # An un-instrumented server treats the token as an unknown codec
        # name and skips it — never selects it, never errors.
        assert choose_codec([TRACE_TOKEN], WIRE_CODECS) == "json"
        assert choose_codec(["binary", TRACE_TOKEN], WIRE_CODECS) == "binary"

    @settings(max_examples=20)
    @given(st.sampled_from(sorted(WIRE_CODECS)), st.booleans())
    def test_split_join_round_trip(self, codec, traced):
        assert split_negotiated(join_negotiated(codec, traced)) == (codec, traced)

    def test_split_tolerates_untagged_replies(self):
        assert split_negotiated("json") == ("json", False)
        assert split_negotiated(None) == (None, False)


class TestDegradation:
    def test_traced_client_against_untraced_server(self):
        async def scenario():
            nodes = [ServiceNode(server) for server in range(3)]
            server = TcpServiceServer(nodes, trace=False)  # un-instrumented peer
            await server.start()
            transport = TcpTransport(server.address, codec="binary", trace=True)
            dispatcher = TcpDispatcher(transport)
            tracer = Tracer(sample_rate=1.0)
            trace = tracer.begin("write", variable="x")
            replies = await dispatcher.fan_out(
                [0, 1, 2], "write", ("x", "v", None, None), 0.5, trace=trace
            )
            assert set(replies) == {0, 1, 2}
            # Negotiation fell back to the plain codec: the server chose
            # "binary" but refused the trace extension.
            assert transport.negotiated_codec == "binary"
            assert transport.negotiated_trace is False
            assert server.traced_requests == 0
            # The client-side trace still works — spans recorded locally.
            assert trace.span_dispositions() == {"ok": 3}
            await transport.aclose()
            await server.aclose()

        run(scenario())

    def test_traced_pair_negotiates_and_attributes_requests(self):
        async def scenario():
            nodes = [ServiceNode(server) for server in range(3)]
            server = TcpServiceServer(nodes)  # trace support on by default
            await server.start()
            transport = TcpTransport(server.address, codec="binary", trace=True)
            dispatcher = TcpDispatcher(transport)
            tracer = Tracer(sample_rate=1.0)
            trace = tracer.begin("write", variable="x")
            await dispatcher.fan_out(
                [0, 1, 2], "write", ("x", "v", None, None), 0.5, trace=trace
            )
            assert transport.negotiated_trace is True
            assert server.traced_requests == 3
            assert server.last_trace_id == trace.trace_id
            await transport.aclose()
            await server.aclose()

        run(scenario())

    def test_untraced_client_against_traced_server_stays_untraced(self):
        async def scenario():
            nodes = [ServiceNode(server) for server in range(2)]
            server = TcpServiceServer(nodes)
            await server.start()
            transport = TcpTransport(server.address, codec="binary")
            dispatcher = TcpDispatcher(transport)
            await dispatcher.fan_out([0, 1], "write", ("x", "v", None, None), 0.5)
            assert transport.negotiated_trace is False
            assert server.traced_requests == 0
            await transport.aclose()
            await server.aclose()

        run(scenario())
