"""Tests for multi-register sharding (`repro.service.sharding`)."""

from __future__ import annotations

import asyncio
import random
from collections import Counter

import pytest

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError, QuorumUnavailableError
from repro.service.load import ServiceLoadSpec, key_names, key_weight_cdf, run_service_load
from repro.service.sharding import (
    TRANSPORT_MODES,
    ShardedAsyncRegisterClient,
    ShardedDeployment,
    shard_for_key,
)
from repro.simulation.scenario import ScenarioSpec

MASKING = ProbabilisticMaskingSystem(25, 10, 3)
SCENARIO = ScenarioSpec(system=MASKING)


def run(coroutine):
    return asyncio.run(coroutine)


class TestShardRouting:
    def test_routing_is_total_and_in_range(self):
        for shards in (1, 2, 3, 4, 7, 16):
            for key in key_names(257):
                assert 0 <= shard_for_key(key, shards) < shards

    def test_routing_is_stable_across_calls_and_processes(self):
        # BLAKE2b, not Python's randomised hash(): these exact values must
        # hold in every process, forever — clients routing independently
        # (different machines, restarts) must agree on every key's shard.
        assert [shard_for_key(f"x{i}", 4) for i in range(8)] == [
            shard_for_key(f"x{i}", 4) for i in range(8)
        ]
        assert shard_for_key("x", 1) == 0
        pinned = {"x0": 3, "x1": 1, "x2": 0, "user:42": 2, "": 0}
        for key, expected in pinned.items():
            assert shard_for_key(key, 4) == expected, (key, shard_for_key(key, 4))

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            shard_for_key("x", 0)

    def test_keys_spread_roughly_uniformly(self):
        shards = 4
        counts = Counter(shard_for_key(key, shards) for key in key_names(1000))
        for shard in range(shards):
            # Binomial(1000, 1/4): 6σ band around 250.
            assert abs(counts[shard] - 250) < 6 * (1000 * 0.25 * 0.75) ** 0.5


class TestLoadBands:
    def tally_shard_load(self, skew: float, keys: int = 256, draws: int = 20_000):
        """Simulate the harness's key draws; return per-shard load fractions."""
        shards = 4
        cdf = key_weight_cdf(keys, skew)
        names = key_names(keys)
        rng = random.Random(7)
        counts = Counter()
        # Exactly the harness's draw: choices over the cumulative weights.
        for key in rng.choices(names, cum_weights=cdf, k=draws):
            counts[shard_for_key(key, shards)] += 1
        return [counts[shard] / draws for shard in range(shards)]

    def test_uniform_keys_balance_within_a_tight_band(self):
        loads = self.tally_shard_load(skew=0.0)
        for load in loads:
            assert 0.20 <= load <= 0.30  # fair share is 0.25

    def test_zipf_keys_stay_within_a_loose_band(self):
        # With 256 keys hashed over 4 shards a zipf(0.8) workload still
        # spreads: no shard may starve or absorb a majority of the traffic.
        loads = self.tally_shard_load(skew=0.8)
        for load in loads:
            assert 0.10 <= load <= 0.45

    def test_cdf_is_monotone_and_ends_at_one(self):
        for skew in (0.0, 0.5, 1.2):
            cdf = key_weight_cdf(64, skew)
            assert all(a < b for a, b in zip(cdf, cdf[1:]))
            assert cdf[-1] == 1.0

    def test_skew_concentrates_mass_on_early_ranks(self):
        uniform, skewed = key_weight_cdf(100, 0.0), key_weight_cdf(100, 1.0)
        assert skewed[9] > uniform[9]  # top-10 keys absorb more mass


class TestShardedDeployment:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedDeployment("not a scenario")
        with pytest.raises(ConfigurationError):
            ShardedDeployment(SCENARIO, shards=0)
        with pytest.raises(ConfigurationError):
            ShardedDeployment(SCENARIO, transport="carrier-pigeon")
        assert TRANSPORT_MODES == ("inproc", "tcp")

    def test_shards_are_independent_replica_groups(self):
        deployment = ShardedDeployment(SCENARIO, shards=3, rng=random.Random(1))
        assert deployment.shard_count == 3
        all_nodes = [node for shard in deployment.shards for node in shard.nodes]
        assert len(all_nodes) == 3 * 25
        assert len({id(node) for node in all_nodes}) == 3 * 25
        transports = {id(shard.transport) for shard in deployment.shards}
        assert len(transports) == 3

    def test_client_count_must_match_shards(self):
        deployment = ShardedDeployment(SCENARIO, shards=2, rng=random.Random(1))
        client = deployment.client_for_shard(0, rng=random.Random(2))
        with pytest.raises(ConfigurationError):
            ShardedAsyncRegisterClient(deployment, [client])

    def test_writes_land_only_on_the_keys_shard(self):
        async def scenario():
            deployment = ShardedDeployment(SCENARIO, shards=2, rng=random.Random(3))
            client = deployment.new_register_client(random.Random(4), timeout=1.0)
            keys = [f"x{i}" for i in range(6)]
            for key in keys:
                await client.write(key, f"value-{key}")
            for key in keys:
                home = shard_for_key(key, 2)
                holders_home = sum(
                    1
                    for node in deployment.shards[home].nodes
                    if node.stored(key) is not None
                )
                holders_other = sum(
                    1
                    for node in deployment.shards[1 - home].nodes
                    if node.stored(key) is not None
                )
                assert holders_home == 10  # the write quorum
                assert holders_other == 0  # never crosses shards
                outcome = await client.read(key)
                assert outcome.value in (f"value-{key}", None)

        run(scenario())

    def test_crashed_shard_only_affects_its_own_keys(self):
        async def scenario():
            deployment = ShardedDeployment(SCENARIO, shards=2, rng=random.Random(5))
            client = deployment.new_register_client(random.Random(6), timeout=0.01)
            keys = [f"x{i}" for i in range(8)]
            for key in keys:
                await client.write(key, "before-the-crash")
            dead_shard = 0
            for node in deployment.shards[dead_shard].nodes:
                node.crash()
            for key in keys:
                if shard_for_key(key, 2) == dead_shard:
                    # Its shard is gone: reads return ⊥, writes find no quorum.
                    outcome = await client.read(key)
                    assert outcome.value is None
                    with pytest.raises(QuorumUnavailableError):
                        await client.write(key, "after-the-crash")
                else:
                    # The surviving shard neither lost data nor availability.
                    outcome = await client.read(key)
                    assert outcome.value == "before-the-crash"
                    write = await client.write(key, "after-the-crash")
                    assert len(write.acknowledged) == 10

        run(scenario())

    def test_tcp_deployment_starts_and_serves(self):
        async def scenario():
            deployment = ShardedDeployment(
                SCENARIO, shards=2, transport="tcp", rng=random.Random(7)
            )
            async with deployment:
                ports = {shard.server.port for shard in deployment.shards}
                assert len(ports) == 2
                client = deployment.new_register_client(random.Random(8), timeout=1.0)
                await client.write("x0", "tcp-value")
                outcome = await client.read("x0")
                assert outcome.value in ("tcp-value", None)
            assert not deployment.shards[0].server.serving

        run(scenario())

    def test_clients_require_a_started_tcp_deployment(self):
        deployment = ShardedDeployment(SCENARIO, transport="tcp", rng=random.Random(9))
        with pytest.raises(ConfigurationError, match="start"):
            deployment.client_for_shard(0)


class TestShardedLoadHarness:
    def base_spec(self, **overrides):
        defaults = dict(
            scenario=SCENARIO,
            clients=20,
            reads_per_client=4,
            writes=8,
            shards=2,
            keys=8,
            seed=11,
        )
        defaults.update(overrides)
        return ServiceLoadSpec(**defaults)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.base_spec(shards=0)
        with pytest.raises(ConfigurationError):
            self.base_spec(keys=0)
        with pytest.raises(ConfigurationError):
            self.base_spec(key_skew=-0.1)
        with pytest.raises(ConfigurationError):
            self.base_spec(transport="smoke-signals")
        with pytest.raises(ConfigurationError, match="idle"):
            self.base_spec(shards=4, keys=2)
        with pytest.raises(ConfigurationError, match="deadline"):
            self.base_spec(transport="tcp", deadline=None)
        with pytest.raises(ConfigurationError, match="deadline"):
            with pytest.warns(DeprecationWarning, match="rpc_timeout"):
                self.base_spec(transport="tcp", rpc_timeout=None)

    def test_sharded_run_completes_and_tallies_per_shard_ops(self):
        report = run_service_load(self.base_spec())
        assert report.reads_completed == 80
        assert report.writes_completed == 8
        assert len(report.shard_ops) == 2
        assert sum(report.shard_ops) == report.operations
        assert all(ops > 0 for ops in report.shard_ops)
        assert report.violations == 0
        assert len(report.per_shard_throughput) == 2
        assert "per-shard" in report.render()

    def test_zipf_workload_completes_with_zero_violations(self):
        report = run_service_load(self.base_spec(key_skew=1.0, seed=13))
        assert report.reads_completed == 80
        assert report.violations == 0

    def test_single_key_run_reports_one_shard(self):
        report = run_service_load(
            ServiceLoadSpec(scenario=SCENARIO, clients=10, reads_per_client=3, writes=4, seed=3)
        )
        assert report.shard_ops == [report.operations]
        assert "per-shard" not in report.render()
