"""Tests for the batched dispatch fast path and quorum-selection modes."""

from __future__ import annotations

import asyncio
import math
import random

import pytest

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.service.client import AsyncQuorumClient
from repro.service.dispatch import DISPATCH_MODES, BatchedDispatcher
from repro.service.load import ServiceLoadSpec, run_service_load
from repro.service.node import ServiceNode
from repro.service.transport import AsyncTransport
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import ScenarioSpec

MASKING = ProbabilisticMaskingSystem(25, 10, 3)


def deploy(system, seed=0, timeout=0.01, window=0.0, **transport_kwargs):
    nodes = [ServiceNode(server) for server in range(system.n)]
    transport = AsyncTransport(**transport_kwargs)
    dispatcher = BatchedDispatcher(nodes, transport, window=window)
    client = AsyncQuorumClient(
        system,
        nodes,
        transport,
        timeout=timeout,
        rng=random.Random(seed),
        dispatcher=dispatcher,
    )
    return nodes, transport, dispatcher, client


class TestBatchedDispatcher:
    def test_window_must_be_non_negative(self):
        nodes = [ServiceNode(0)]
        with pytest.raises(ConfigurationError):
            BatchedDispatcher(nodes, AsyncTransport(), window=-0.1)

    def test_write_then_read_round_trip(self):
        nodes, transport, dispatcher, client = deploy(MASKING)

        async def scenario():
            write = await client.write("x", "v", Timestamp(1), None)
            read = await client.read("x")
            return write, read

        write, read = asyncio.run(scenario())
        assert write.acknowledged == write.quorum
        assert read.responders == 10
        stored = {server: s.value for server, s in read.replies.items()}
        overlap = write.quorum & read.quorum
        assert overlap  # 10-of-25 quorums intersect with overwhelming probability
        assert all(stored[server] == "v" for server in overlap)
        assert transport.calls == 20
        assert dispatcher.flushes > 0

    def test_coalescing_one_delivery_event_per_node_per_tick(self):
        nodes, transport, dispatcher, client = deploy(MASKING)

        async def scenario():
            await client.write("x", "v", Timestamp(1), None)
            flushes_before = dispatcher.flushes
            # 50 concurrent reads: 500 RPCs, but every node's deliveries for
            # one tick coalesce into a single flush event.
            await asyncio.gather(*(client.read("x") for _ in range(50)))
            return flushes_before

        flushes_before = asyncio.run(scenario())
        read_flushes = dispatcher.flushes - flushes_before
        # 500 read RPCs over at most 25 nodes; allow a few stray ticks from
        # pool-refill interleaving but require order-of-magnitude coalescing.
        assert read_flushes <= 2 * MASKING.n
        assert transport.calls == 10 + 500

    def test_silent_nodes_cost_the_operation_deadline_once(self):
        nodes, transport, dispatcher, client = deploy(MASKING, timeout=0.005)
        for node in nodes:
            node.crash()

        async def scenario():
            loop = asyncio.get_running_loop()
            started = loop.time()
            read = await client.read("x")
            return read, loop.time() - started

        read, elapsed = asyncio.run(scenario())
        assert read.responders == 0
        assert read.replies == {}
        # The op resolved at its shared deadline (plus the repair sweep),
        # not after a per-RPC cascade of deadlines.
        assert elapsed < 0.1
        assert transport.timed_out > 0

    def test_drops_are_counted_and_resolve_at_the_deadline(self):
        nodes, transport, dispatcher, client = deploy(
            MASKING, timeout=0.005, drop_probability=0.5, seed=3
        )

        async def scenario():
            await client.write("x", "v", Timestamp(1), None)
            return await client.read("x")

        read = asyncio.run(scenario())
        assert transport.dropped > 0
        assert read.responders <= 10

    def test_no_deadline_resolves_after_delivery(self):
        nodes, transport, dispatcher, client = deploy(
            MASKING, timeout=None, drop_probability=0.3, seed=5
        )

        async def scenario():
            return await client.read("x")

        read = asyncio.run(scenario())
        # With no deadline the op resolves once every fate is known at the
        # delivery tick; dropped RPCs are simply absent.
        assert 0 <= read.responders <= 10

    def test_partial_failure_triggers_probe_repair(self):
        nodes, transport, dispatcher, client = deploy(MASKING, timeout=0.005)
        for server in range(20, 25):
            nodes[server].crash()

        async def scenario():
            await client.write("x", "v", Timestamp(1), None)
            return await client.read("x")

        read = asyncio.run(scenario())
        # Any quorum touching a crashed node forces the probe fallback; the
        # repaired quorum is drawn from live servers only.
        if client.probe_fallbacks:
            assert read.quorum <= frozenset(range(20))

    def test_delay_exceeding_timeout_counts_as_timeout(self):
        nodes, transport, dispatcher, client = deploy(
            MASKING, timeout=0.001, latency=0.01
        )
        client.repair = False

        async def scenario():
            return await client.read("x")

        read = asyncio.run(scenario())
        assert read.responders == 0
        assert transport.timed_out == 10


class TestQuorumPool:
    def test_pooled_quorums_are_strategy_sized_and_sorted(self):
        nodes, transport, dispatcher, client = deploy(MASKING)
        drawn = [client._next_quorum() for _ in range(100)]
        for quorum in drawn:
            assert len(quorum) == 10
            assert list(quorum) == sorted(quorum)
            assert all(0 <= server < 25 for server in quorum)
        # The pool refills in blocks but never repeats a block verbatim.
        assert len(set(drawn)) > 50

    def test_pool_zero_falls_back_to_per_op_sampling(self):
        nodes, transport, dispatcher, client = deploy(MASKING)
        client.quorum_pool = 0
        quorum = client._next_quorum()
        assert len(quorum) == 10
        assert client._pool == []

    def test_sample_quorum_block_matches_strategy_distribution(self):
        rng = random.Random(7)
        block = MASKING.sample_quorum_block(rng, count=500)
        assert len(block) == 500
        counts = [0] * 25
        for quorum in block:
            assert len(set(quorum)) == 10
            for server in quorum:
                counts[server] += 1
        mean = 500 * 10 / 25
        sigma = math.sqrt(500 * 0.4 * 0.6)
        assert all(abs(count - mean) < 6 * sigma for count in counts)


class TestLoadProfile:
    def test_strategy_selection_keeps_the_uniform_per_server_load(self):
        """Batched dispatch + pooling must not skew the access profile.

        Tolerance-band check over per-server read counts: every server's
        count stays within six binomial standard deviations of the uniform
        expectation ``R * q/n`` (a >6σ outlier at a pinned seed would mean
        the fast path distorted the strategy, which would void ε).
        """
        reads = 2_000
        spec = ServiceLoadSpec(
            scenario=ScenarioSpec(system=MASKING),
            clients=100,
            reads_per_client=20,
            writes=1,
            dispatch="batched",
            selection="strategy",
            seed=13,
        )
        report, nodes = run_with_nodes(spec)
        assert report.reads_completed == reads
        counts = [node.server.reads_handled for node in nodes]
        assert sum(counts) == reads * 10
        mean = reads * 10 / 25
        sigma = math.sqrt(reads * 0.4 * 0.6)
        for server, count in enumerate(counts):
            assert abs(count - mean) < 6 * sigma, (
                f"server {server} saw {count} reads, expected {mean:.0f} ± {6 * sigma:.0f}"
            )

    def test_latency_aware_biases_away_from_slow_servers(self):
        """Crashed (never-answering) servers must lose traffic under the bias."""
        spec = ServiceLoadSpec(
            scenario=ScenarioSpec(
                system=MASKING, failure_model=FailureModel.random_crashes(5)
            ),
            clients=100,
            reads_per_client=10,
            writes=2,
            rpc_timeout=0.002,
            dispatch="batched",
            selection="latency-aware",
            seed=13,
        )
        with pytest.warns(UserWarning, match="deviates from the access strategy"):
            report, nodes = run_with_nodes(spec)
        assert report.reads_completed == 1_000
        crashed = [n.server.reads_handled for n in nodes if n.server.is_crashed]
        live = [n.server.reads_handled for n in nodes if not n.server.is_crashed]
        assert len(crashed) == 5
        # The EWMA penalties push selection away from the dead servers.
        assert max(crashed) < min(live) or sum(crashed) / 5 < 0.5 * sum(live) / 20


class TestLatencyAwareGuards:
    def test_rejected_for_byzantine_scenarios(self):
        scenario = ScenarioSpec(
            system=ProbabilisticMaskingSystem(100, 30, 3),
            failure_model=FailureModel.colluding_forgers(
                3, "FORGED", Timestamp.forged_maximum()
            ),
        )
        with pytest.raises(ConfigurationError, match="latency-aware"):
            ServiceLoadSpec(scenario=scenario, selection="latency-aware")

    def test_client_warns_on_construction(self):
        nodes = [ServiceNode(server) for server in range(25)]
        transport = AsyncTransport()
        with pytest.warns(UserWarning, match="ε guarantee"):
            client = AsyncQuorumClient(
                MASKING, nodes, transport, selection="latency-aware"
            )
        assert client.tracker is not None

    def test_requires_a_fixed_quorum_size(self):
        from repro.core.epsilon_intersecting import EpsilonIntersectingSystem

        # An explicit-strategy system has no fixed quorum_size, so the
        # latency-aware draw (which needs one) must be refused.
        explicit = EpsilonIntersectingSystem(4, [[0, 1], [1, 2], [2, 3]])
        nodes = [ServiceNode(server) for server in range(4)]
        with pytest.raises(ConfigurationError, match="quorum_size"):
            AsyncQuorumClient(
                explicit, nodes, AsyncTransport(), selection="latency-aware"
            )

    def test_unknown_modes_are_rejected(self):
        nodes = [ServiceNode(server) for server in range(25)]
        with pytest.raises(ConfigurationError):
            AsyncQuorumClient(MASKING, nodes, AsyncTransport(), selection="fastest")
        with pytest.raises(ConfigurationError):
            ServiceLoadSpec(scenario=ScenarioSpec(system=MASKING), dispatch="warp")
        assert DISPATCH_MODES == ("batched", "per-rpc")


def run_with_nodes(spec):
    """Run a load spec while capturing the deployed nodes for inspection.

    The harness constructs its nodes internally (one group per shard, in
    :mod:`repro.service.sharding`), so the per-server access counters are
    recovered by patching that module's ``ServiceNode`` name with a
    recording subclass for the duration of the run.
    """
    from repro.service import sharding as sharding_module

    nodes = []
    original_node = sharding_module.ServiceNode

    class RecordingNode(original_node):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            nodes.append(self)

    sharding_module.ServiceNode = RecordingNode
    try:
        report = run_service_load(spec)
    finally:
        sharding_module.ServiceNode = original_node
    return report, nodes
