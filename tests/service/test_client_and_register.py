"""Tests for the async quorum client and the register frontends."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError, QuorumUnavailableError
from repro.protocol.timestamps import Timestamp
from repro.service.client import AsyncQuorumClient
from repro.service.node import ServiceNode
from repro.service.register import (
    AsyncDisseminationRegister,
    AsyncMaskingRegister,
    AsyncRegister,
    async_register_for,
)
from repro.service.transport import AsyncTransport
from repro.simulation.scenario import ScenarioSpec
from repro.simulation.server import ByzantineForgeBehavior

PLAIN = UniformEpsilonIntersectingSystem(25, 8)
MASKING = ProbabilisticMaskingSystem(25, 10, 3)
DISSEMINATION = ProbabilisticDisseminationSystem(25, 8, 5)


def run(coroutine):
    return asyncio.run(coroutine)


def deploy(system, seed=0, timeout=0.01, **transport_kwargs):
    nodes = [ServiceNode(server) for server in range(system.n)]
    transport = AsyncTransport(seed=seed, **transport_kwargs)
    client = AsyncQuorumClient(
        system, nodes, transport, timeout=timeout, rng=random.Random(seed)
    )
    return nodes, client


class TestAsyncQuorumClient:
    def test_node_count_must_match_the_system(self):
        with pytest.raises(ConfigurationError):
            AsyncQuorumClient(PLAIN, [ServiceNode(0)], AsyncTransport())

    def test_write_then_read_round_trip(self):
        nodes, client = deploy(PLAIN)

        async def scenario():
            write = await client.write("x", "v", Timestamp(1), None)
            assert len(write.acknowledged) == len(write.quorum) == 8
            assert not write.retried
            read = await client.read("x")
            assert len(read.quorum) == 8
            assert read.responders == 8
            # The quorums are ε-intersecting, not strict: replies carry the
            # value only where the two quorums overlap.
            for stored in read.replies.values():
                assert stored.value == "v"

        run(scenario())

    def test_partial_failure_triggers_probe_repair(self):
        nodes, client = deploy(PLAIN, seed=5)
        for server in range(10):
            nodes[server].crash()

        async def scenario():
            write = await client.write("x", "v", Timestamp(1), None)
            return write

        write = run(scenario())
        # With 10 of 25 servers crashed a sampled 8-quorum almost surely hits
        # a crash; the client then probes and re-assembles a live quorum.
        assert client.probe_fallbacks >= 1
        assert write.retried
        assert len(write.acknowledged & write.quorum) == 8
        assert all(not nodes[server].server.is_crashed for server in write.quorum)

    def test_write_with_no_live_quorum_raises(self):
        nodes, client = deploy(PLAIN)
        for node in nodes:
            node.crash()

        async def scenario():
            await client.write("x", "v", Timestamp(1), None)

        with pytest.raises(QuorumUnavailableError):
            run(scenario())

    def test_read_with_everything_dead_returns_no_replies(self):
        nodes, client = deploy(PLAIN)
        for node in nodes:
            node.crash()

        read = run(client.read("x"))
        assert read.replies == {}
        assert read.responders == 0

    def test_repair_can_be_disabled(self):
        nodes = [ServiceNode(server) for server in range(PLAIN.n)]
        client = AsyncQuorumClient(
            PLAIN,
            nodes,
            AsyncTransport(),
            timeout=0.01,
            rng=random.Random(1),
            repair=False,
        )
        for server in range(10):
            nodes[server].crash()

        read = run(client.read("x"))
        assert client.probe_fallbacks == 0
        assert not read.retried

    def test_probe_strategy_matches_the_construction(self):
        _, uniform_client = deploy(PLAIN)
        from repro.quorum.probe import UniformProbeStrategy

        assert isinstance(uniform_client._probe_strategy(), UniformProbeStrategy)


class TestAsyncRegisters:
    def test_plain_register_reads_fresh_when_healthy(self):
        nodes, client = deploy(PLAIN)

        async def scenario():
            register = AsyncRegister(client)
            await register.write("payload")
            outcome = await register.read()
            assert register.classify_read(outcome) == "fresh"
            assert outcome.value == "payload"

        run(scenario())

    def test_plain_register_accepts_forgeries_masking_filters_them(self):
        # The same attack, two read rules: a forged maximal timestamp wins a
        # benign read but cannot collect k=2 vouching votes with one forger.
        async def scenario(register_cls, system):
            nodes, client = deploy(system, seed=9)
            nodes[0].set_behavior(
                ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
            )
            register = register_cls(client)
            await register.write("honest")
            labels = set()
            for _ in range(40):
                outcome = await register.read()
                labels.add(register.classify_read(outcome))
            return labels

        plain_labels = run(scenario(AsyncRegister, PLAIN))
        masking_labels = run(scenario(AsyncMaskingRegister, MASKING))
        assert "fabricated" in plain_labels
        assert "fabricated" not in masking_labels
        assert "fresh" in masking_labels

    def test_dissemination_register_discards_forgeries(self):
        nodes, client = deploy(DISSEMINATION, seed=4)
        for server in range(5):
            nodes[server].set_behavior(
                ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
            )

        async def scenario():
            register = AsyncDisseminationRegister(client)
            await register.write("signed")
            for _ in range(20):
                outcome = await register.read()
                assert register.classify_read(outcome) in ("fresh", "stale", "empty")
            return register.forged_replies_rejected

        rejected = run(scenario())
        assert rejected > 0

    def test_masking_register_requires_a_threshold_system(self):
        _, client = deploy(PLAIN)
        from repro.exceptions import ProtocolError

        with pytest.raises(ProtocolError):
            AsyncMaskingRegister(client)

    def test_async_register_for_resolves_the_scenario_kind(self):
        for system, expected in (
            (PLAIN, AsyncRegister),
            (DISSEMINATION, AsyncDisseminationRegister),
            (MASKING, AsyncMaskingRegister),
        ):
            _, client = deploy(system)
            register = async_register_for(ScenarioSpec(system=system), client)
            assert type(register) is expected
        # Forcing plain over a masking system mirrors the spec's escape hatch.
        _, client = deploy(MASKING)
        forced = async_register_for(
            ScenarioSpec(system=MASKING, register_kind="plain"), client
        )
        assert type(forced) is AsyncRegister

    def test_service_outcomes_match_the_sequential_register_semantics(self):
        # One deterministic state: 3 servers store the old version, the rest
        # the new one.  The async masking frontend and the sync register must
        # select and label identically (shared selection + classification).
        nodes, client = deploy(MASKING, seed=2)

        async def scenario():
            register = AsyncMaskingRegister(client)
            await register.write("v1")
            await register.write("v2")
            outcome = await register.read()
            return register.classify_read(outcome), outcome

        label, outcome = run(scenario())
        assert label == "fresh"
        assert outcome.value == "v2"
        assert outcome.votes >= outcome.threshold
