"""Tests for the per-server EWMA latency tracker."""

from __future__ import annotations

import collections
import random

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service.stats import EwmaLatencyTracker


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            EwmaLatencyTracker(0)
        with pytest.raises(ConfigurationError):
            EwmaLatencyTracker(5, alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaLatencyTracker(5, alpha=1.5)
        with pytest.raises(ConfigurationError):
            EwmaLatencyTracker(5, initial=0.0)

    def test_biased_quorum_size_bounds(self):
        tracker = EwmaLatencyTracker(5)
        with pytest.raises(ConfigurationError):
            tracker.biased_quorum(0)
        with pytest.raises(ConfigurationError):
            tracker.biased_quorum(6)


class TestEwma:
    def test_converges_toward_a_constant_signal(self):
        tracker = EwmaLatencyTracker(3, alpha=0.5, initial=0.001)
        for _ in range(20):
            tracker.observe(0, 0.010)
        assert tracker.estimate(0) == pytest.approx(0.010, rel=1e-3)
        # Untouched servers keep their initial estimate.
        assert tracker.estimate(1) == pytest.approx(0.001)
        assert tracker.observations == 20

    def test_alpha_one_tracks_the_last_observation_exactly(self):
        tracker = EwmaLatencyTracker(2, alpha=1.0)
        tracker.observe(1, 0.5)
        assert tracker.estimate(1) == 0.5
        tracker.penalize(1, 2.0)
        assert tracker.estimate(1) == 2.0
        assert tracker.penalties == 1

    def test_estimates_returns_a_copy(self):
        tracker = EwmaLatencyTracker(4)
        estimates = tracker.estimates()
        estimates[0] = 99.0
        assert tracker.estimate(0) != 99.0


class TestBiasedQuorum:
    def test_returns_sorted_distinct_servers(self):
        tracker = EwmaLatencyTracker(25)
        generator = np.random.default_rng(3)
        for _ in range(50):
            quorum = tracker.biased_quorum(10, generator=generator)
            assert len(quorum) == 10
            assert len(set(quorum)) == 10
            assert list(quorum) == sorted(quorum)
            assert all(0 <= server < 25 for server in quorum)

    def test_full_universe_draw_is_everyone(self):
        tracker = EwmaLatencyTracker(6)
        assert tracker.biased_quorum(6, rng=random.Random(0)) == tuple(range(6))

    def test_prefers_fast_servers(self):
        tracker = EwmaLatencyTracker(10, alpha=1.0)
        # Server 0 is 100x faster than everyone else.
        tracker.observe(0, 0.0001)
        for server in range(1, 10):
            tracker.observe(server, 0.01)
        generator = np.random.default_rng(7)
        counts = collections.Counter()
        draws = 400
        for _ in range(draws):
            for server in tracker.biased_quorum(3, generator=generator):
                counts[server] += 1
        # Under uniform selection server 0 would appear in ~30% of draws;
        # with a 100:1 weight ratio it must appear in nearly all of them.
        assert counts[0] > 0.9 * draws
        others = [counts[server] for server in range(1, 10)]
        assert max(others) < counts[0]

    def test_uniform_estimates_stay_roughly_uniform(self):
        tracker = EwmaLatencyTracker(10)
        generator = np.random.default_rng(11)
        counts = collections.Counter()
        draws = 2_000
        for _ in range(draws):
            for server in tracker.biased_quorum(3, generator=generator):
                counts[server] += 1
        expected = draws * 3 / 10
        for server in range(10):
            assert abs(counts[server] - expected) < 6 * (expected * 0.7) ** 0.5
