"""Tests for the TCP socket transport and server (`repro.service.net`)."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import RpcTimeoutError, ServiceError
from repro.protocol.timestamps import Timestamp
from repro.service.client import AsyncQuorumClient
from repro.service.net import (
    RemoteNode,
    TcpDispatcher,
    TcpServiceServer,
    TcpTransport,
    remote_nodes,
)
from repro.service.node import ServiceNode
from repro.service.register import AsyncMaskingRegister
from repro.simulation.server import ByzantineForgeBehavior

MASKING = ProbabilisticMaskingSystem(25, 10, 3)


def run(coroutine):
    return asyncio.run(coroutine)


async def deploy(n=25, **transport_kwargs):
    nodes = [ServiceNode(server) for server in range(n)]
    server = TcpServiceServer(nodes)
    await server.start()
    transport = TcpTransport(server.address, **transport_kwargs)
    return nodes, server, transport


async def teardown(server, transport):
    await transport.aclose()
    await server.aclose()


class TestTcpRoundTrip:
    def test_write_then_read_through_real_sockets(self):
        async def scenario():
            nodes, server, transport = await deploy()
            stub = RemoteNode(3)
            ok = await transport.call(
                stub, "write", "x", ("v", 0), Timestamp(1), None, timeout=1.0
            )
            assert ok == ("ok", True)
            tag, stored = await transport.call(stub, "read", "x", timeout=1.0)
            assert tag == "ok"
            assert stored.value == ("v", 0) and stored.timestamp == Timestamp(1)
            # The write really landed on the server-side node object.
            assert nodes[3].stored("x").value == ("v", 0)
            assert server.requests_handled == 2
            await teardown(server, transport)

        run(scenario())

    def test_server_routes_by_server_id(self):
        async def scenario():
            nodes, server, transport = await deploy(n=5)
            for target in range(5):
                await transport.call(
                    RemoteNode(target), "write", "x", target, Timestamp(1), None,
                    timeout=1.0,
                )
            assert [node.stored("x").value for node in nodes] == [0, 1, 2, 3, 4]
            await teardown(server, transport)

        run(scenario())

    def test_concurrent_calls_multiplex_on_shared_connections(self):
        async def scenario():
            nodes, server, transport = await deploy(n=10)
            for node in nodes:
                node.server.handle_write("x", node.server_id * 11, Timestamp(1), None)
            replies = await asyncio.gather(
                *(
                    transport.call(RemoteNode(index % 10), "read", "x", timeout=1.0)
                    for index in range(200)
                )
            )
            for index, (tag, stored) in enumerate(replies):
                assert stored.value == (index % 10) * 11  # no cross-talk
            assert transport.calls == 200
            await teardown(server, transport)

        run(scenario())

    def test_ephemeral_port_is_published_after_start(self):
        async def scenario():
            server = TcpServiceServer([ServiceNode(0)])
            host, port = await server.start()
            assert host == "127.0.0.1" and port > 0
            assert server.serving
            with pytest.raises(ServiceError):
                await server.start()
            await server.aclose()
            assert not server.serving

        run(scenario())


class TestFailureSemantics:
    def test_crashed_node_costs_the_caller_its_deadline(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3)
            nodes[1].crash()
            loop = asyncio.get_running_loop()
            started = loop.time()
            with pytest.raises(RpcTimeoutError):
                await transport.call(RemoteNode(1), "ping", timeout=0.05)
            waited = loop.time() - started
            assert waited == pytest.approx(0.05, abs=0.1)
            assert transport.timed_out == 1
            await teardown(server, transport)

        run(scenario())

    def test_simulated_drops_are_counted_and_never_sent(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3, drop_probability=0.999999, seed=7)
            with pytest.raises(RpcTimeoutError, match="dropped"):
                await transport.call(RemoteNode(0), "ping", timeout=0.01)
            assert transport.dropped == 1
            assert server.requests_handled == 0
            await teardown(server, transport)

        run(scenario())

    def test_reconnects_after_a_dropped_connection(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3, connections=1)
            assert await transport.call(RemoteNode(0), "ping", timeout=1.0) == ("ok", True)
            # Sever the (only) connection out from under the transport.
            transport._connections[0]._writer.close()
            await asyncio.sleep(0.01)
            assert await transport.call(RemoteNode(0), "ping", timeout=1.0) == ("ok", True)
            assert transport.reconnects == 1
            assert server.connections_accepted == 2
            await teardown(server, transport)

        run(scenario())

    def test_unreachable_server_times_out_instead_of_hanging(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3)
            await server.aclose()
            # A fresh transport to the now-closed port cannot even connect.
            dead = TcpTransport(server.address)
            with pytest.raises(RpcTimeoutError):
                await dead.call(RemoteNode(0), "ping", timeout=0.05)
            assert dead.timed_out == 1
            await teardown(server, transport)
            await dead.aclose()

        run(scenario())

    def test_injected_latency_counts_against_the_deadline(self):
        # Parity with AsyncTransport: a drawn delay beyond the deadline IS
        # the timeout — the caller never waits delay + timeout.
        async def scenario():
            nodes, server, transport = await deploy(n=3, latency=0.2)
            loop = asyncio.get_running_loop()
            started = loop.time()
            with pytest.raises(RpcTimeoutError):
                await transport.call(RemoteNode(0), "ping", timeout=0.05)
            assert loop.time() - started < 0.19
            assert transport.timed_out == 1
            assert server.requests_handled == 0
            await teardown(server, transport)

        run(scenario())

    def test_unknown_method_costs_the_peer_its_connection_only(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3, connections=1)
            with pytest.raises(RpcTimeoutError):
                await transport.call(RemoteNode(0), "bogus-method", timeout=0.05)
            # The server survives and the transport reconnects transparently.
            assert server.serving
            assert await transport.call(RemoteNode(0), "ping", timeout=1.0) == ("ok", True)
            await teardown(server, transport)

        run(scenario())

    def test_negative_server_id_is_rejected_not_wrapped_around(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3, connections=1)
            with pytest.raises(RpcTimeoutError):
                await transport.call(RemoteNode(-1), "ping", timeout=0.05)
            # Nothing was routed to nodes[-1]; the server just dropped the peer.
            assert server.requests_handled == 0
            assert server.serving
            await teardown(server, transport)

        run(scenario())

    def test_validation(self):
        with pytest.raises(ServiceError):
            TcpTransport(("127.0.0.1", 1), connections=0)


class TestTcpDispatcher:
    def test_fan_out_matches_per_rpc_replies(self):
        async def scenario():
            nodes, server, transport = await deploy(n=10)
            for node in nodes:
                node.server.handle_write("x", node.server_id, Timestamp(1), None)
            dispatcher = TcpDispatcher(transport)
            replies = await dispatcher.fan_out(range(10), "read", ("x",), 1.0)
            assert sorted(replies) == list(range(10))
            assert all(replies[s].value == s for s in replies)
            assert dispatcher.ops == 1
            await teardown(server, transport)

        run(scenario())

    def test_silent_servers_resolve_at_the_op_deadline(self):
        async def scenario():
            nodes, server, transport = await deploy(n=6)
            for victim in (1, 4):
                nodes[victim].crash()
            dispatcher = TcpDispatcher(transport)
            loop = asyncio.get_running_loop()
            started = loop.time()
            replies = await dispatcher.fan_out(range(6), "ping", (), 0.05)
            waited = loop.time() - started
            assert sorted(replies) == [0, 2, 3, 5]
            assert waited == pytest.approx(0.05, abs=0.1)
            assert transport.timed_out == 2
            assert len(transport._pending) == 0  # nothing leaked
            await teardown(server, transport)

        run(scenario())

    def test_empty_fan_out_resolves_immediately(self):
        async def scenario():
            nodes, server, transport = await deploy(n=3)
            dispatcher = TcpDispatcher(transport)
            assert await dispatcher.fan_out((), "ping", (), 0.05) == {}
            await teardown(server, transport)

        run(scenario())


class TestQuorumClientOverTcp:
    def test_masking_register_over_the_wire(self):
        async def scenario():
            nodes, server, transport = await deploy()
            client = AsyncQuorumClient(
                MASKING,
                remote_nodes(25),
                transport,
                timeout=1.0,
                rng=random.Random(3),
                dispatcher=TcpDispatcher(transport),
            )
            register = AsyncMaskingRegister(client)
            write = await register.write("over-the-wire")
            assert len(write.acknowledged) == 10
            outcome = await register.read()
            # ε-allowance: the two quorums can under-intersect; what cannot
            # happen is a fabricated value.
            assert outcome.value in ("over-the-wire", None)
            await teardown(server, transport)

        run(scenario())

    def test_forged_replies_cross_the_wire_and_are_outvoted(self):
        async def scenario():
            nodes, server, transport = await deploy()
            system = ProbabilisticMaskingSystem(25, 15, 2)  # k = 5 > b = 2
            for victim in (0, 1):
                nodes[victim].set_behavior(
                    ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
                )
            client = AsyncQuorumClient(
                system,
                remote_nodes(25),
                transport,
                timeout=1.0,
                rng=random.Random(5),
                dispatcher=TcpDispatcher(transport),
            )
            register = AsyncMaskingRegister(client)
            await register.write("honest")
            for _ in range(10):
                outcome = await register.read()
                assert outcome.value != "FORGED"
            await teardown(server, transport)

        run(scenario())

    def test_probe_repair_works_over_tcp(self):
        async def scenario():
            nodes, server, transport = await deploy()
            client = AsyncQuorumClient(
                MASKING,
                remote_nodes(25),
                transport,
                timeout=0.05,
                rng=random.Random(11),
            )
            register = AsyncMaskingRegister(client)
            await register.write("durable")
            for victim in random.Random(2).sample(range(25), 10):
                nodes[victim].crash()
            outcome = await register.read()
            assert outcome.value in ("durable", None)
            assert client.probe_fallbacks >= 1
            await teardown(server, transport)

        run(scenario())
