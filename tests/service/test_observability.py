"""End-to-end observability: tracing, metrics and the ε-monitor under load.

Three contracts pin the subsystem to the load harness:

* **zero divergence** — the same seeded soak with tracing at 100% sampling
  classifies every read identically to the untraced run (the tracer's RNG
  is private, the hot path branch-free when off);
* **reconciliation** — with 100% sampling, the per-operation trace
  classifications reconcile *exactly* with the merged report's outcome
  counters — no lost, double-counted or mislabelled operation, in-process
  and across a 2-shard multi-process cluster;
* **ε-monitor** — zero alerts under the benign conformance scenario
  (ε = 0 exactly for the 24-of-36 system), and provable firing when an
  injected forger regime pushes the observed error rate past ε + slack.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.service.cluster import merge_worker_provenance
from repro.service.load import ServiceLoadSpec, run_service_load
from repro.simulation.failures import FailureModel
from repro.simulation.scenario import ScenarioSpec

#: ε = 0 exactly: every two 24-of-36 quorums share ≥ 12 servers, ≥ k = 8
#: of them correct against b = 3 — benign soaks are theorem-clean.
STRICT = ProbabilisticMaskingSystem(36, 24, 3)


def benign_scenario() -> ScenarioSpec:
    return ScenarioSpec(system=STRICT)


def forged_scenario() -> ScenarioSpec:
    """Three colluding forgers against a reader with no filter at all.

    ``register_kind="plain"`` models an unprotected reader (threshold 1),
    so any quorum touching a forger accepts the fabricated maximum — with
    24-of-36 quorums that is ~97% of reads, far past ε + slack = 0.05.
    """
    return ScenarioSpec(
        system=STRICT,
        failure_model=FailureModel.colluding_forgers(
            3, "FORGED", Timestamp.forged_maximum()
        ),
        register_kind="plain",
    )


def small_spec(**overrides) -> ServiceLoadSpec:
    defaults = dict(
        scenario=benign_scenario(),
        clients=20,
        reads_per_client=4,
        writes=6,
        seed=13,
    )
    defaults.update(overrides)
    return ServiceLoadSpec(**defaults)


def read_classifications(report) -> Counter:
    """Per-label counts of the report's read traces (writes excluded)."""
    counts = Counter()
    for trace in report.traces:
        if trace["op"] == "read" and trace["classification"] is not None:
            counts[trace["classification"]] += 1
    return counts


class TestSpecKnobs:
    def test_trace_sample_is_validated(self):
        with pytest.raises(ConfigurationError):
            small_spec(trace_sample=-0.1)
        with pytest.raises(ConfigurationError):
            small_spec(trace_sample=1.5)
        spec = small_spec(trace_sample=0.5, monitor_epsilon=True)
        assert "trace_sample=0.5" in spec.describe()

    def test_tracing_defaults_off(self):
        report = run_service_load(small_spec())
        assert report.traces == []
        assert report.epsilon_monitor is None
        assert report.epsilon_alerts == []


class TestZeroDivergence:
    def test_traced_run_classifies_identically_to_untraced(self):
        untraced = run_service_load(small_spec())
        traced = run_service_load(
            small_spec(trace_sample=1.0, monitor_epsilon=True)
        )
        assert traced.outcomes == untraced.outcomes
        assert traced.violations == untraced.violations
        assert traced.reads_completed == untraced.reads_completed
        assert untraced.traces == [] and traced.traces != []

    def test_partial_sampling_does_not_diverge_either(self):
        untraced = run_service_load(small_spec())
        sampled = run_service_load(small_spec(trace_sample=0.25))
        assert sampled.outcomes == untraced.outcomes
        assert 0 < len(sampled.traces) < untraced.reads_completed + 6


class TestReconciliation:
    def test_traces_reconcile_with_report_counters_in_process(self):
        report = run_service_load(small_spec(trace_sample=1.0))
        observed = read_classifications(report)
        expected = {
            label: count for label, count in report.outcomes.items() if count
        }
        assert dict(observed) == expected
        assert sum(observed.values()) == report.reads_completed
        # Every trace carries its sampled quorum and at least one span.
        assert all(trace["quorum"] for trace in report.traces)
        assert all(trace["spans"] for trace in report.traces)

    def test_metrics_snapshots_cover_the_run(self):
        from repro.obs.metrics import merge_snapshots

        report = run_service_load(small_spec(trace_sample=1.0))
        assert report.metrics
        merged = merge_snapshots(report.metrics)
        assert merged["counters"]["rpc_calls"] > 0
        assert merged["counters"]["traces_started"] == len(report.traces)

    def test_cluster_traces_reconcile_with_the_merged_report(self):
        spec = small_spec(
            clients=6,
            reads_per_client=3,
            writes=6,
            keys=4,
            shards=2,
            processes=2,
            transport="tcp",
            trace_sample=1.0,
            monitor_epsilon=True,
            seed=3,
        )
        report = run_service_load(spec)
        observed = read_classifications(report)
        expected = {
            label: count for label, count in report.outcomes.items() if count
        }
        assert dict(observed) == expected
        assert sum(observed.values()) == report.reads_completed == 18
        # Worker id bases keep trace ids globally unique across processes.
        ids = [trace["trace_id"] for trace in report.traces]
        assert len(ids) == len(set(ids))
        # The merged metrics include both load workers and, after teardown,
        # every shard-server process's own snapshot.
        server_roles = [
            snapshot
            for snapshot in report.metrics
            if snapshot.get("labels", {}).get("role") == "shard-server"
        ]
        assert len(server_roles) == 2
        assert all(
            snapshot["counters"]["server_requests_handled"] > 0
            for snapshot in server_roles
        )
        # Benign ε = 0 cluster: the monitor observed every read, no alerts.
        assert report.epsilon_monitor is not None
        assert report.epsilon_monitor["observed"] == report.reads_completed
        assert report.epsilon_alerts == []


class TestEpsilonMonitor:
    def test_benign_scenario_raises_zero_alerts(self):
        report = run_service_load(small_spec(monitor_epsilon=True))
        assert report.epsilon_monitor is not None
        assert report.epsilon_monitor["epsilon"] == 0.0
        assert report.epsilon_monitor["observed"] == report.reads_completed
        assert report.epsilon_monitor["errors"] == 0
        assert report.epsilon_alerts == []

    def test_forged_regime_provably_fires(self):
        report = run_service_load(
            small_spec(
                scenario=forged_scenario(),
                clients=30,
                reads_per_client=3,
                monitor_epsilon=True,
                seed=5,
            )
        )
        # The unprotected reader accepts forgeries on ~97% of reads: far
        # beyond ε + slack = 0.05, so the monitor must have fired.
        assert report.epsilon_monitor["errors"] > 0
        assert report.epsilon_alerts
        alert = report.epsilon_alerts[0]
        assert alert["kind"] == "epsilon-exceeded"
        assert alert["observed_rate"] > alert["bound"]

    def test_monitor_off_by_default_even_when_traced(self):
        report = run_service_load(small_spec(trace_sample=1.0))
        assert report.epsilon_monitor is None


class TestWorkerProvenance:
    def test_agreeing_values_collapse_to_one(self):
        assert merge_worker_provenance(["asyncio", "asyncio"]) == "asyncio"
        assert merge_worker_provenance(["json"]) == "json"

    def test_differing_values_surface_as_the_per_worker_list(self):
        assert merge_worker_provenance(["uvloop", "asyncio"]) == [
            "uvloop",
            "asyncio",
        ]
        assert merge_worker_provenance(["json", "binary", "json"]) == [
            "json",
            "binary",
            "json",
        ]

    def test_empty_input_is_preserved(self):
        assert merge_worker_provenance([]) == []

    def test_cluster_report_records_per_worker_provenance(self):
        spec = small_spec(
            clients=4,
            reads_per_client=1,
            writes=4,
            keys=4,
            shards=2,
            processes=2,
            transport="tcp",
            codec="binary",
            seed=2,
        )
        report = run_service_load(spec)
        # Homogeneous workers collapse to a single value; the negotiated
        # codec is the binary one the spec asked for, not a silently kept
        # first-worker default.
        assert report.loop_driver == "asyncio"
        assert report.codec == "binary"
