"""Unit tests for the anti-entropy fast path in the service layer.

The integration story (probe fallbacks collapse under churn, rates stay
welded across layers) lives in the conformance suite and the churn
benchmark; this module pins the individual moving parts:

* :class:`~repro.service.gossip.NodeClusterView` — the duck-typed cluster
  facade gossip runs over;
* :func:`~repro.service.gossip.scenario_verifier` — dissemination
  scenarios re-verify gossip payloads, benign/masking ones do not;
* :class:`~repro.service.gossip.GossipService` — deterministic spread,
  crashed silence, Byzantine-poison rejection, lifecycle, metrics;
* the client's ``lazy_fallback`` read path and ``piggyback_repairs``;
* the register's laggard selection and repair piggybacking;
* the load spec/report anti-entropy knobs and the shard-imbalance gauge;
* the :class:`~repro.api.Deployment` builder's ``anti_entropy`` axis,
  end to end over an in-process deployment.
"""

from __future__ import annotations

import asyncio
import math
import random

import pytest

from repro.api import Deployment
from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ReadOutcome
from repro.service.client import AsyncQuorumClient, ReadRpcResult
from repro.service.gossip import GossipService, NodeClusterView, scenario_verifier
from repro.service.load import ServiceLoadReport, ServiceLoadSpec
from repro.service.node import ServiceNode
from repro.service.register import AsyncRegister
from repro.service.transport import AsyncTransport
from repro.simulation.scenario import AntiEntropySpec, ScenarioSpec
from repro.simulation.server import ByzantineForgeBehavior, StoredValue

PLAIN = UniformEpsilonIntersectingSystem(25, 8)
MASKING = ProbabilisticMaskingSystem(25, 10, 3)
DISSEMINATION = ProbabilisticDisseminationSystem(25, 8, 5)

AE = AntiEntropySpec(fanout=3, rounds=2, interval=0.002, repair_budget=4)


def run(coroutine):
    return asyncio.run(coroutine)


def make_nodes(n):
    return [ServiceNode(server) for server in range(n)]


def seed_value(node, value="v", counter=1, signature=None):
    node.server.storage["x"] = StoredValue(value, Timestamp(counter), signature)


class TestNodeClusterView:
    def test_exposes_the_cluster_surface(self):
        nodes = make_nodes(5)
        view = NodeClusterView(nodes)
        assert view.n == 5
        assert view.server(3) is nodes[3].server
        assert view.servers == [node.server for node in nodes]
        assert view.correct_servers() == {0, 1, 2, 3, 4}

    def test_correct_servers_tracks_live_faults(self):
        nodes = make_nodes(5)
        view = NodeClusterView(nodes)
        nodes[1].crash()
        nodes[4].set_behavior(
            ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
        )
        assert view.correct_servers() == {0, 2, 3}
        nodes[1].recover()
        assert view.correct_servers() == {0, 1, 2, 3}


class TestScenarioVerifier:
    def test_benign_and_masking_scenarios_have_no_verifier(self):
        # The masking defence is vote counting at read time, not payload
        # verification at gossip time.
        assert scenario_verifier(ScenarioSpec(system=PLAIN)) is None
        assert scenario_verifier(ScenarioSpec(system=MASKING)) is None

    def test_dissemination_verifier_applies_the_signature_scheme(self):
        scenario = ScenarioSpec(system=DISSEMINATION)
        verify = scenario_verifier(scenario)
        assert verify is not None
        scheme = SignatureScheme(scenario.signing_key)
        timestamp = Timestamp(3)
        signed = StoredValue("v", timestamp, scheme.sign("x", "v", timestamp))
        assert verify("x", signed)
        assert not verify("x", StoredValue("v", timestamp, b"not-a-signature"))
        # A forged record with no verifying signature never passes.
        assert not verify(
            "x", StoredValue("FORGED", Timestamp.forged_maximum(), None)
        )


class TestGossipService:
    def test_run_once_spreads_a_seeded_value(self):
        nodes = make_nodes(12)
        seed_value(nodes[0])
        gossip = GossipService(nodes, AE, rng=random.Random(1))
        for _ in range(4):
            gossip.run_once()
        holders = sum(1 for node in nodes if node.stored("x") is not None)
        # 8 rounds at fanout 3 over 12 replicas: push gossip saturates.
        assert holders == 12
        assert gossip.gossip_rounds == 4 * AE.rounds
        assert gossip.adoptions == 11
        assert gossip.engine.messages_pushed > 0

    def test_crashed_nodes_neither_push_nor_adopt(self):
        nodes = make_nodes(10)
        seed_value(nodes[0])
        crashed = nodes[5]
        crashed.crash()
        gossip = GossipService(nodes, AE, rng=random.Random(2))
        for _ in range(4):
            gossip.run_once()
        assert crashed.stored("x") is None
        live = sum(
            1
            for node in nodes
            if node is not crashed and node.stored("x") is not None
        )
        assert live == 9

    def test_recovered_node_catches_up_through_gossip(self):
        nodes = make_nodes(10)
        seed_value(nodes[0])
        nodes[5].crash()
        gossip = GossipService(nodes, AE, rng=random.Random(2))
        for _ in range(4):
            gossip.run_once()
        nodes[5].recover()
        for _ in range(4):
            gossip.run_once()
        stored = nodes[5].stored("x")
        assert stored is not None and stored.value == "v"

    def test_poisoned_payloads_are_never_adopted_under_a_verifier(self):
        # A forged record sitting in a correct replica's storage (the state
        # a Byzantine writer leaves behind) must not spread: dissemination
        # gossip re-verifies every push exactly like a read reply.
        scenario = ScenarioSpec(system=DISSEMINATION)
        scheme = SignatureScheme(scenario.signing_key)
        nodes = make_nodes(DISSEMINATION.n)
        nodes[0].server.storage["x"] = StoredValue(
            "FORGED", Timestamp.forged_maximum(), None
        )
        timestamp = Timestamp(1)
        seed_value(nodes[1], "honest", 1, scheme.sign("x", "honest", timestamp))
        gossip = GossipService(
            nodes, AE, rng=random.Random(3), verify=scenario_verifier(scenario)
        )
        for _ in range(6):
            gossip.run_once()
        for node in nodes[1:]:
            stored = node.stored("x")
            assert stored is None or stored.value == "honest"

    def test_background_task_lifecycle_is_idempotent(self):
        nodes = make_nodes(8)
        seed_value(nodes[0])
        gossip = GossipService(nodes, AE, rng=random.Random(4))

        async def scenario():
            assert not gossip.running
            gossip.start()
            gossip.start()  # idempotent: must not double-schedule
            assert gossip.running
            await asyncio.sleep(0.02)
            await gossip.aclose()
            await gossip.aclose()  # idempotent: second close is a no-op
            assert not gossip.running

        run(scenario())
        assert gossip.gossip_rounds > 0

    def test_metrics_snapshot_carries_the_gossip_counters(self):
        nodes = make_nodes(8)
        seed_value(nodes[0])
        gossip = GossipService(nodes, AE, rng=random.Random(5))
        gossip.run_once()
        snapshot = gossip.metrics_snapshot(labels={"shard": 2})
        assert snapshot["labels"] == {"component": "gossip", "shard": 2}
        counters = snapshot["counters"]
        assert counters["gossip_rounds"] == AE.rounds
        assert counters["gossip_adoptions"] == gossip.adoptions
        assert counters["gossip_messages_pushed"] == gossip.engine.messages_pushed


def deploy_client(system, seed=0, **client_kwargs):
    nodes = [ServiceNode(server) for server in range(system.n)]
    client = AsyncQuorumClient(
        nodes=nodes,
        system=system,
        transport=AsyncTransport(seed=seed),
        deadline=0.01,
        rng=random.Random(seed),
        **client_kwargs,
    )
    return nodes, client


class TestLazyFallback:
    @staticmethod
    def prepopulated(lazy_fallback):
        # All live replicas already hold the value; 10 crashed servers make
        # the sampled quorum almost surely hit a non-responder.
        nodes, client = deploy_client(PLAIN, seed=5, lazy_fallback=lazy_fallback)
        for node in nodes:
            seed_value(node)
        for server in range(10):
            nodes[server].crash()
        return nodes, client

    def test_settleable_reads_skip_the_probe_round(self):
        nodes, client = self.prepopulated(lazy_fallback=True)

        async def scenario():
            return await client.read("x")

        result = run(scenario())
        assert client.probe_fallbacks == 0
        assert not result.retried
        assert any(stored.value == "v" for stored in result.replies.values())

    def test_without_lazy_fallback_the_same_read_probes(self):
        nodes, client = self.prepopulated(lazy_fallback=False)

        async def scenario():
            return await client.read("x")

        run(scenario())
        assert client.probe_fallbacks >= 1

    def test_settleable_respects_the_masking_threshold(self):
        _, client = deploy_client(MASKING, lazy_fallback=True)
        threshold = int(MASKING.read_threshold)
        assert threshold > 1
        value = StoredValue("v", Timestamp(1))
        below = {server: value for server in range(threshold - 1)}
        assert not client._settleable(below)
        at = {server: value for server in range(threshold)}
        assert client._settleable(at)
        # Explicit "I store nothing" replies are not votes.
        padded = dict(below)
        padded[MASKING.n - 1] = None
        assert not client._settleable(padded)

    def test_writes_always_keep_the_probe_fallback(self):
        # Lazy fallback is a read-path optimisation only: a write that
        # missed acks must still probe, or the write quorum silently thins.
        nodes, client = deploy_client(PLAIN, seed=5, lazy_fallback=True)
        for server in range(10):
            nodes[server].crash()

        async def scenario():
            return await client.write("x", "v", Timestamp(1), None)

        write = run(scenario())
        assert client.probe_fallbacks >= 1
        assert write.retried


class RecordingDispatcher:
    """Just the ``enqueue_repair`` surface the piggyback path targets."""

    def __init__(self):
        self.repairs = []

    def enqueue_repair(self, server, variable, value, timestamp, signature):
        self.repairs.append((server, variable, value, timestamp, signature))


class TestPiggybackRepairs:
    def test_budget_caps_the_queued_repairs(self):
        _, client = deploy_client(PLAIN, repair_budget=2)
        dispatcher = RecordingDispatcher()
        client.dispatcher = dispatcher
        queued = client.piggyback_repairs(
            "x", "v", Timestamp(2), b"sig", [3, 4, 5, 6]
        )
        assert queued == 2
        assert client.repairs_piggybacked == 2
        assert [entry[0] for entry in dispatcher.repairs] == [3, 4]
        assert dispatcher.repairs[0][1:] == ("x", "v", Timestamp(2), b"sig")

    def test_no_dispatcher_or_budget_means_no_repairs(self):
        _, client = deploy_client(PLAIN, repair_budget=2)
        assert client.piggyback_repairs("x", "v", Timestamp(2), None, [3]) == 0
        _, budgetless = deploy_client(PLAIN, repair_budget=0)
        budgetless.dispatcher = RecordingDispatcher()
        assert budgetless.piggyback_repairs("x", "v", Timestamp(2), None, [3]) == 0
        # A dispatcher with no piggyback path (the per-RPC oracle) is skipped.
        _, plain_path = deploy_client(PLAIN, repair_budget=2)
        plain_path.dispatcher = object()
        assert plain_path.piggyback_repairs("x", "v", Timestamp(2), None, [3]) == 0
        assert client.repairs_piggybacked == 0

    def test_negative_budget_is_refused(self):
        with pytest.raises(ConfigurationError):
            deploy_client(PLAIN, repair_budget=-1)


class TestRegisterRepairTargets:
    @staticmethod
    def register():
        _, client = deploy_client(PLAIN, repair_budget=4)
        return AsyncRegister(client)

    @staticmethod
    def read_result(replies, quorum):
        return ReadRpcResult(
            quorum=frozenset(quorum),
            replies=replies,
            responders=len(replies),
            retried=False,
            probes_used=0,
        )

    @staticmethod
    def outcome(quorum, winners, value="v", counter=5):
        return ReadOutcome(
            value=value,
            timestamp=Timestamp(counter),
            quorum=frozenset(quorum),
            reporting_servers=frozenset(winners),
            replies=len(winners),
        )

    def test_laggards_order_stale_before_unknown(self):
        register = self.register()
        quorum = [0, 1, 2, 3]
        replies = {
            0: StoredValue("v", Timestamp(5)),  # the winner
            1: StoredValue("old", Timestamp(1)),  # provably stale
            # 2 never replied with a value: plausible laggard
            3: StoredValue("junk", object()),  # uncomparable forgery residue
        }
        result = self.read_result(replies, quorum)
        outcome = self.outcome(quorum, winners=[0])
        assert register._lagging_servers(result, outcome) == [1, 2]

    def test_empty_or_valueless_outcomes_queue_nothing(self):
        register = self.register()
        dispatcher = RecordingDispatcher()
        register.client.dispatcher = dispatcher
        result = self.read_result({}, [0, 1])
        empty = ReadOutcome(
            value=None,
            timestamp=None,
            quorum=frozenset([0, 1]),
            reporting_servers=frozenset(),
            replies=0,
        )
        register._piggyback_repair(result, empty)
        assert dispatcher.repairs == []
        # Every quorum member already reporting the winner: nothing lags.
        full = self.read_result(
            {0: StoredValue("v", Timestamp(5)), 1: StoredValue("v", Timestamp(5))},
            [0, 1],
        )
        register._piggyback_repair(full, self.outcome([0, 1], winners=[0, 1]))
        assert dispatcher.repairs == []

    def test_repair_payload_carries_the_donor_signature(self):
        register = self.register()
        dispatcher = RecordingDispatcher()
        register.client.dispatcher = dispatcher
        quorum = [0, 1, 2]
        replies = {
            0: StoredValue("v", Timestamp(5), b"donor-signature"),
            1: StoredValue("old", Timestamp(1)),
        }
        result = self.read_result(replies, quorum)
        register._piggyback_repair(result, self.outcome(quorum, winners=[0]))
        assert [entry[0] for entry in dispatcher.repairs] == [1, 2]
        for _, variable, value, timestamp, signature in dispatcher.repairs:
            assert (variable, value, timestamp) == ("x", "v", Timestamp(5))
            assert signature == b"donor-signature"


class TestLoadSpecAntiEntropy:
    def test_anti_entropy_must_be_a_spec(self):
        with pytest.raises(ConfigurationError):
            ServiceLoadSpec(
                scenario=ScenarioSpec(system=PLAIN),
                anti_entropy={"fanout": 2},  # type: ignore[arg-type]
            )

    def test_fanout_must_fit_the_scenario_universe(self):
        with pytest.raises(ConfigurationError):
            ServiceLoadSpec(
                scenario=ScenarioSpec(system=PLAIN),
                anti_entropy=AntiEntropySpec(fanout=PLAIN.n),
            )

    def test_resolution_prefers_the_explicit_spec(self):
        scenario_level = AntiEntropySpec(fanout=1, repair_budget=1)
        load_level = AntiEntropySpec(fanout=2, repair_budget=8)
        scenario = ScenarioSpec(system=PLAIN, anti_entropy=scenario_level)
        inherited = ServiceLoadSpec(scenario=scenario)
        assert inherited.resolved_anti_entropy == scenario_level
        overridden = ServiceLoadSpec(scenario=scenario, anti_entropy=load_level)
        assert overridden.resolved_anti_entropy == load_level
        bare = ServiceLoadSpec(scenario=ScenarioSpec(system=PLAIN))
        assert bare.resolved_anti_entropy is None

    def test_describe_names_the_resolved_spec(self):
        spec = ServiceLoadSpec(scenario=ScenarioSpec(system=PLAIN), anti_entropy=AE)
        assert AE.describe() in spec.describe()
        bare = ServiceLoadSpec(scenario=ScenarioSpec(system=PLAIN))
        assert "anti_entropy" not in bare.describe()


def make_report(shard_ops=(), repairs_piggybacked=0, gossip_rounds=0):
    return ServiceLoadReport(
        spec=ServiceLoadSpec(scenario=ScenarioSpec(system=PLAIN)),
        elapsed=1.0,
        reads_completed=10,
        writes_completed=2,
        write_failures=0,
        outcomes={"fresh": 10},
        read_latencies=[0.001] * 10,
        write_latencies=[0.001] * 2,
        rpc_calls=96,
        rpc_dropped=0,
        rpc_timeouts=0,
        probe_fallbacks=0,
        injected_crashes=0,
        repairs_piggybacked=repairs_piggybacked,
        gossip_rounds=gossip_rounds,
        shard_ops=list(shard_ops),
    )


class TestReportAntiEntropyAccounting:
    def test_shard_imbalance_ratios(self):
        assert make_report(shard_ops=[]).shard_imbalance == 1.0
        assert make_report(shard_ops=[12]).shard_imbalance == 1.0
        assert make_report(shard_ops=[0, 0]).shard_imbalance == 1.0
        assert make_report(shard_ops=[30, 0]).shard_imbalance == math.inf
        assert make_report(shard_ops=[30, 10]).shard_imbalance == 3.0

    def test_render_reports_anti_entropy_only_when_it_ran(self):
        quiet = make_report().render()
        assert "anti-entropy" not in quiet
        busy = make_report(repairs_piggybacked=7, gossip_rounds=40).render()
        assert "7 repairs piggybacked" in busy
        assert "40 gossip rounds" in busy

    def test_render_shows_the_imbalance_next_to_per_shard_throughput(self):
        report = make_report(shard_ops=[30, 10]).render()
        assert "(imbalance 3.00x)" in report


class TestDeploymentBuilderAntiEntropy:
    def test_keyword_knobs_build_a_spec(self):
        builder = Deployment.builder(ScenarioSpec(system=PLAIN)).anti_entropy(
            fanout=1, rounds=3, interval=0.5, repair_budget=9
        )
        assert builder._anti_entropy == AntiEntropySpec(
            fanout=1, rounds=3, interval=0.5, repair_budget=9
        )

    def test_explicit_spec_passes_through(self):
        builder = Deployment.builder(ScenarioSpec(system=PLAIN)).anti_entropy(AE)
        assert builder._anti_entropy is AE

    def test_non_spec_argument_is_refused(self):
        with pytest.raises(ConfigurationError):
            Deployment.builder(ScenarioSpec(system=PLAIN)).anti_entropy(
                {"fanout": 2}  # type: ignore[arg-type]
            )

    def test_in_process_deployment_runs_background_gossip(self):
        scenario = ScenarioSpec(system=UniformEpsilonIntersectingSystem(12, 5))
        deployment = (
            Deployment.builder(scenario)
            .anti_entropy(fanout=2, rounds=1, interval=0.001, repair_budget=4)
            .build()
        )

        async def scenario_run():
            async with deployment:
                client = deployment.connect()
                await client.write("x", "v1")
                await asyncio.sleep(0.02)  # a few gossip ticks
                for _ in range(8):
                    outcome = await client.read("x")
                    assert outcome.value == "v1"
                # Read before teardown: aclose() cancels the gossip tasks
                # and drops their counters with them.
                return deployment.sharded.gossip_rounds

        assert run(scenario_run()) > 0

    def test_reads_piggyback_repairs_when_gossip_is_off(self):
        # fanout=0 keeps the background healer out of the way, so the
        # ε-misses of a 12/5 system leave laggards for reads to repair.
        scenario = ScenarioSpec(system=UniformEpsilonIntersectingSystem(12, 5))
        deployment = (
            Deployment.builder(scenario)
            .anti_entropy(fanout=0, repair_budget=4)
            .build()
        )

        async def scenario_run():
            async with deployment:
                client = deployment.connect()
                await client.write("x", "v1")
                for _ in range(8):
                    outcome = await client.read("x")
                    assert outcome.value == "v1"

        run(scenario_run())
        # Each repair rode a coalesced delivery, not a new RPC round.
        assert deployment.sharded.repairs_piggybacked > 0
