"""Tests for the async transport and the replica nodes."""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ConfigurationError, RpcTimeoutError, ServiceError
from repro.protocol.timestamps import Timestamp
from repro.service.node import NO_REPLY, ServiceNode
from repro.service.transport import AsyncTransport
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineSilentBehavior,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestAsyncTransport:
    def test_healthy_round_trip(self):
        node = ServiceNode(0)
        transport = AsyncTransport()

        async def scenario():
            ok = await transport.call(node, "write", "x", "v", Timestamp(1), None)
            assert ok == ("ok", True)
            tag, stored = await transport.call(node, "read", "x")
            assert stored.value == "v"

        run(scenario())
        assert transport.calls == 2
        assert transport.dropped == transport.timed_out == 0

    def test_dropped_rpcs_cost_exactly_the_timeout(self):
        node = ServiceNode(0)
        transport = AsyncTransport(drop_probability=0.999999, seed=3)

        async def scenario():
            loop = asyncio.get_event_loop()
            started = loop.time()
            with pytest.raises(RpcTimeoutError):
                await transport.call(node, "ping", timeout=0.01)
            return loop.time() - started

        waited = run(scenario())
        assert waited == pytest.approx(0.01, abs=0.05)
        # Drops and deadline misses partition the failure counts.
        assert transport.dropped == 1
        assert transport.timed_out == 0

    def test_latency_beyond_deadline_times_out(self):
        node = ServiceNode(0)
        transport = AsyncTransport(latency=0.05)

        async def scenario():
            with pytest.raises(RpcTimeoutError):
                await transport.call(node, "ping", timeout=0.001)
            # Without a deadline the same call succeeds.
            assert await transport.call(node, "ping") == ("ok", True)

        run(scenario())
        assert transport.timed_out == 1

    def test_silent_node_times_out(self):
        node = ServiceNode(0)
        node.crash()
        transport = AsyncTransport()

        async def scenario():
            with pytest.raises(RpcTimeoutError):
                await transport.call(node, "ping", timeout=0.001)

        run(scenario())
        assert transport.timed_out == 1
        assert transport.dropped == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncTransport(latency=-1.0)
        with pytest.raises(ConfigurationError):
            AsyncTransport(latency=0.001, jitter=0.01)
        with pytest.raises(ConfigurationError):
            AsyncTransport(drop_probability=1.0)

    def test_jitter_is_reproducible_per_seed(self):
        delays = []
        for _ in range(2):
            transport = AsyncTransport(latency=0.01, jitter=0.005, seed=11)
            delays.append([transport._delay() for _ in range(20)])
        assert delays[0] == delays[1]
        assert len(set(delays[0])) > 1


class TestServiceNode:
    def test_crash_and_recover_preserve_storage(self):
        node = ServiceNode(0)
        assert node.handle("write", "x", "v", Timestamp(1), None) == ("ok", True)
        node.crash()
        assert node.handle("read", "x") is NO_REPLY
        assert node.handle("write", "x", "w", Timestamp(2), None) is NO_REPLY
        assert not node.answers_pings
        node.recover()
        tag, stored = node.handle("read", "x")
        assert stored.value == "v"

    def test_empty_register_answers_explicitly(self):
        # "I store nothing" must be distinguishable from a dead server.
        node = ServiceNode(0)
        assert node.handle("read", "x") == ("ok", None)
        assert node.handle("ping") == ("ok", True)

    def test_silent_byzantine_suppresses_everything(self):
        node = ServiceNode(0, ByzantineSilentBehavior())
        assert node.handle("ping") is NO_REPLY
        assert node.handle("read", "x") is NO_REPLY
        assert node.handle("write", "x", "v", Timestamp(1), None) is NO_REPLY

    def test_live_behavior_swap(self):
        node = ServiceNode(0)
        node.handle("write", "x", "v", Timestamp(1), None)
        node.set_behavior(ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum()))
        tag, stored = node.handle("read", "x")
        assert stored.value == "FORGED"
        assert node.answers_pings  # a forger looks perfectly alive

    def test_unknown_method_is_a_service_error(self):
        with pytest.raises(ServiceError):
            ServiceNode(0).handle("warp")
