"""Property tests for the socket transport's wire format.

Three invariants carry the whole TCP path:

* **round trip** — ``decode(encode(x)) == x`` for every payload the
  protocol can put on the wire (scalars, bytes, tuples, dicts with
  non-string keys, honest and forged timestamps, stored values — nested
  arbitrarily, adversarially large or empty), on *both* codecs;
* **cross-codec agreement** — the same logical frame through the JSON and
  the struct-packed binary codec decodes to the identical value (binary
  is a faster spelling, never a different protocol);
* **short-read resilience** — the incremental decoder recovers the exact
  frame sequence however the byte stream is chopped up (single bytes,
  fragments straddling the length prefix, many frames per chunk, codecs
  mixed mid-stream).

All are hypothesis properties; deterministic edge cases (oversized
frames, malformed tags, truncated or forged binary bodies) pin the error
behaviour, and the fast-path request/response envelope codecs are checked
byte-for-byte against the generic encoder.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireFormatError
from repro.protocol.timestamps import Timestamp
from repro.service.wire import (
    BINARY_MAGIC,
    MAX_FRAME_BYTES,
    WIRE_CODECS,
    FrameDecoder,
    decode_binary_body,
    decode_binary_request_body,
    decode_binary_response_body,
    encode_binary_body,
    encode_frame,
    encode_request_frame,
    encode_response_frame,
    pack_value,
    request_tail,
    unpack_value,
)
from repro.simulation.server import StoredValue

# -- payload strategy -------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),  # NaN breaks == (not the codec); tested separately
    st.text(max_size=64),
    st.binary(max_size=128),
    st.builds(
        Timestamp,
        st.integers(min_value=0, max_value=2**62),
        st.integers(min_value=0, max_value=2**30),
    ),
)


def stored_values(values):
    return st.builds(
        StoredValue,
        value=values,
        timestamp=st.one_of(
            st.builds(Timestamp, st.integers(min_value=0, max_value=2**62)),
            st.text(max_size=8),  # a forged, wrong-typed timestamp
            st.none(),
        ),
        signature=st.one_of(st.none(), st.binary(max_size=64)),
    )


payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(
                st.text(max_size=8),
                st.integers(min_value=-100, max_value=100),
                st.builds(Timestamp, st.integers(min_value=0, max_value=1000)),
            ),
            children,
            max_size=4,
        ),
        stored_values(children),
    ),
    max_leaves=12,
)


class TestRoundTrip:
    @given(payloads)
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_is_identity(self, payload):
        assert unpack_value(json.loads(json.dumps(pack_value(payload)))) == payload

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_frame_round_trip(self, payload):
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(payload))
        assert decoded == payload
        assert decoder.pending_bytes == 0

    def test_rpc_shaped_payloads(self):
        request = ("req", 17, 4, "write", ("x", ("v", 3), Timestamp(5, 1), b"\x00sig"))
        reply = ("rsp", 17, ("ok", StoredValue(("v", 3), Timestamp(5, 1), b"\x00sig")))
        for payload in (request, reply):
            (decoded,) = FrameDecoder().feed(encode_frame(payload))
            assert decoded == payload
            assert type(decoded) is tuple

    @given(
        st.integers(min_value=1, max_value=2**31),
        st.integers(min_value=0, max_value=10_000),
        st.text(max_size=16),
        st.lists(payloads, max_size=3).map(tuple),
    )
    @settings(max_examples=100, deadline=None)
    def test_fast_request_encoder_is_byte_identical(self, request_id, server, method, args):
        for codec in WIRE_CODECS:
            tail = request_tail(method, args, codec)
            fast = encode_request_frame(request_id, server, tail)
            assert fast == encode_frame(("req", request_id, server, method, args), codec)

    def test_adversarially_large_and_empty_values(self):
        large = "A" * 1_000_000
        for value in (large, large.encode(), b"", "", [], (), {}, 0, None):
            (decoded,) = FrameDecoder().feed(encode_frame(value))
            assert decoded == value
            assert type(decoded) is type(value)

    def test_forged_maximum_timestamp_survives_the_wire(self):
        forged = Timestamp.forged_maximum()
        (decoded,) = FrameDecoder().feed(encode_frame(forged))
        assert decoded == forged and isinstance(decoded, Timestamp)

    def test_non_string_dict_keys_round_trip(self):
        history = {Timestamp(1): "a", Timestamp(2): "b", 7: "c"}
        (decoded,) = FrameDecoder().feed(encode_frame(history))
        assert decoded == history

    def test_unserialisable_object_is_rejected(self):
        with pytest.raises(WireFormatError):
            pack_value(object())


class TestBinaryCodec:
    @given(payloads)
    @settings(max_examples=300, deadline=None)
    def test_binary_round_trip_is_identity(self, payload):
        assert decode_binary_body(encode_binary_body(payload)) == payload

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_binary_frame_round_trip(self, payload):
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(payload, "binary"))
        assert decoded == payload
        assert decoder.pending_bytes == 0

    @given(payloads)
    @settings(max_examples=150, deadline=None)
    def test_cross_codec_agreement(self, payload):
        via_json = FrameDecoder().feed(encode_frame(payload, "json"))
        via_binary = FrameDecoder().feed(encode_frame(payload, "binary"))
        assert via_json == via_binary == [payload]

    def test_cross_codec_pinned_rpc_frame(self):
        """The same logical RPC frame through both codecs, decoded equal."""
        frame = (
            "req",
            99,
            7,
            "write",
            ("x17", ("value", 3), Timestamp(12, 4), b"\x00\xffsig"),
        )
        decoded = {
            codec: FrameDecoder().feed(encode_frame(frame, codec))[0]
            for codec in WIRE_CODECS
        }
        assert decoded["json"] == decoded["binary"] == frame
        # Binary trades fixed-width ints for base64-free bytes: once a real
        # signature rides along, its frames are the smaller spelling.
        signed = frame[:4] + (("x17", ("value", 3), Timestamp(12, 4), bytes(512)),)
        assert len(encode_frame(signed, "binary")) < len(encode_frame(signed, "json"))

    def test_megabyte_payloads_round_trip(self):
        blob = bytes(range(256)) * 4096  # 1 MiB of every byte value
        text = "Σ" * 500_000  # 1 MB of multibyte UTF-8
        for value in (blob, text, ("rsp", 1, ("ok", StoredValue(blob, Timestamp(1), None)))):
            (decoded,) = FrameDecoder().feed(encode_frame(value, "binary"))
            assert decoded == value
        # raw bytes ship without base64: framing overhead stays tiny
        assert len(encode_frame(blob, "binary")) < len(blob) + 64

    @given(payloads, st.data())
    @settings(max_examples=150, deadline=None)
    def test_truncated_binary_body_is_a_wire_error(self, payload, data):
        body = encode_binary_body(payload)
        cut = data.draw(st.integers(min_value=1, max_value=max(1, len(body) - 1)))
        if cut == len(body):  # nothing to truncate (bare None is 2 bytes)
            return
        with pytest.raises(WireFormatError):
            decode_binary_body(body[:cut])

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_forged_binary_body_never_escapes_wire_error(self, garbage):
        """Arbitrary bytes after the magic either decode or raise
        WireFormatError — no other exception type reaches the caller."""
        try:
            decode_binary_body(bytes((BINARY_MAGIC,)) + garbage)
        except WireFormatError:
            pass

    def test_unknown_binary_tag_is_a_wire_error(self):
        with pytest.raises(WireFormatError, match="unknown binary wire tag"):
            decode_binary_body(bytes((BINARY_MAGIC, 0xEE)))

    def test_trailing_bytes_are_a_wire_error(self):
        body = encode_binary_body(("rsp", 1, None)) + b"\x00"
        with pytest.raises(WireFormatError, match="trailing"):
            decode_binary_body(body)

    @given(st.lists(payloads, min_size=1, max_size=4), st.integers(1, 7))
    @settings(max_examples=100, deadline=None)
    def test_binary_frames_survive_any_chunking(self, frames, chunk_size):
        stream = b"".join(encode_frame(frame, "binary") for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), chunk_size):
            decoded.extend(decoder.feed(stream[start : start + chunk_size]))
        assert decoded == frames
        assert decoder.pending_bytes == 0

    @given(st.lists(st.tuples(st.sampled_from(WIRE_CODECS), payloads), min_size=1, max_size=5))
    @settings(max_examples=75, deadline=None)
    def test_codecs_can_mix_mid_stream(self, tagged_frames):
        """One decoder handles interleaved JSON and binary frames: the
        magic byte identifies each body (negotiation downgrades are safe
        even mid-connection)."""
        stream = b"".join(
            encode_frame(payload, codec) for codec, payload in tagged_frames
        )
        decoded = FrameDecoder().feed(stream)
        assert decoded == [payload for _, payload in tagged_frames]


class TestEnvelopeFastPaths:
    """The fixed request/response envelope codecs against the generic ones."""

    @given(
        st.integers(min_value=1, max_value=2**31),
        payloads,
    )
    @settings(max_examples=100, deadline=None)
    def test_response_encoder_is_byte_identical(self, request_id, payload):
        for codec in WIRE_CODECS:
            fast = encode_response_frame(request_id, payload, codec)
            assert fast == encode_frame(("rsp", request_id, payload), codec)

    @given(
        st.integers(min_value=1, max_value=2**31),
        st.integers(min_value=0, max_value=10_000),
        st.text(max_size=16),
        st.lists(payloads, max_size=3).map(tuple),
    )
    @settings(max_examples=100, deadline=None)
    def test_request_fast_decoder_matches_generic(self, request_id, server, method, args):
        frame = encode_request_frame(
            request_id, server, request_tail(method, args, "binary")
        )
        body = bytes(frame[4:])
        assert decode_binary_request_body(body) == decode_binary_body(body)
        assert decode_binary_request_body(body) == ("req", request_id, server, method, args)

    @given(st.integers(min_value=1, max_value=2**31), payloads)
    @settings(max_examples=100, deadline=None)
    def test_response_fast_decoder_matches_generic(self, request_id, payload):
        frame = encode_response_frame(request_id, payload, "binary")
        body = bytes(frame[4:])
        assert decode_binary_response_body(body) == decode_binary_body(body)
        assert decode_binary_response_body(body) == ("rsp", request_id, payload)

    @given(st.binary(max_size=48))
    @settings(max_examples=200, deadline=None)
    def test_fast_decoders_never_diverge_on_garbage(self, garbage):
        """Whatever bytes arrive, the envelope fast paths agree with the
        generic decoder: same value or both a WireFormatError."""
        body = bytes((BINARY_MAGIC,)) + garbage
        for fast in (decode_binary_request_body, decode_binary_response_body):
            try:
                generic = decode_binary_body(body)
            except WireFormatError:
                with pytest.raises(WireFormatError):
                    fast(body)
            else:
                assert fast(body) == generic


class TestShortReadResilience:
    @given(
        st.lists(payloads, min_size=1, max_size=5),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_chunking_yields_the_same_frames(self, frames, chunk_size):
        stream = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), chunk_size):
            decoded.extend(decoder.feed(stream[start : start + chunk_size]))
        assert decoded == frames
        assert decoder.pending_bytes == 0

    @given(st.lists(payloads, min_size=2, max_size=4), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_random_chunk_boundaries(self, frames, rnd):
        stream = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        position = 0
        while position < len(stream):
            step = rnd.randint(1, max(1, len(stream) - position))
            decoded.extend(decoder.feed(stream[position : position + step]))
            position += step
        assert decoded == frames

    def test_partial_frame_stays_buffered_without_output(self):
        frame = encode_frame({"k": list(range(50))})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []  # not even a full length prefix
        assert decoder.feed(frame[3:10]) == []  # prefix + partial body
        assert decoder.pending_bytes == 10
        (decoded,) = decoder.feed(frame[10:])
        assert decoded == {"k": list(range(50))}

    def test_frames_glued_to_a_partial_tail(self):
        first, second = encode_frame("one"), encode_frame("two")
        decoder = FrameDecoder()
        assert decoder.feed(first + second[:5]) == ["one"]
        assert decoder.feed(second[5:]) == ["two"]


class TestMalformedInput:
    def test_oversized_length_prefix_is_rejected_before_buffering(self):
        prefix = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="beyond"):
            FrameDecoder().feed(prefix)

    def test_oversized_encode_is_rejected(self):
        decoder_cap = FrameDecoder(max_frame_bytes=16)
        frame = encode_frame("x" * 64)
        with pytest.raises(WireFormatError):
            decoder_cap.feed(frame)

    def test_garbage_body_is_a_wire_error(self):
        body = b"not json at all"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="undecodable"):
            FrameDecoder().feed(frame)

    def test_unknown_tag_is_a_wire_error(self):
        body = json.dumps({"zz": 1}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="unknown wire tag"):
            FrameDecoder().feed(frame)

    def test_multi_key_object_is_a_wire_error(self):
        body = json.dumps({"a": 1, "b": 2}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="malformed wire tag"):
            FrameDecoder().feed(frame)

    def test_malformed_timestamp_body_is_a_wire_error(self):
        body = json.dumps({"ts": [1, 2, 3, 4]}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="malformed 'ts'"):
            FrameDecoder().feed(frame)
