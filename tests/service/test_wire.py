"""Property tests for the socket transport's wire format.

Two invariants carry the whole TCP path:

* **round trip** — ``decode(encode(x)) == x`` for every payload the
  protocol can put on the wire (scalars, bytes, tuples, dicts with
  non-string keys, honest and forged timestamps, stored values — nested
  arbitrarily, adversarially large or empty);
* **short-read resilience** — the incremental decoder recovers the exact
  frame sequence however the byte stream is chopped up (single bytes,
  fragments straddling the length prefix, many frames per chunk).

Both are hypothesis properties; a handful of deterministic edge cases
(oversized frames, malformed tags, truncation) pin the error behaviour.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireFormatError
from repro.protocol.timestamps import Timestamp
from repro.service.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    pack_value,
    unpack_value,
)
from repro.simulation.server import StoredValue

# -- payload strategy -------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),  # NaN breaks == (not the codec); tested separately
    st.text(max_size=64),
    st.binary(max_size=128),
    st.builds(
        Timestamp,
        st.integers(min_value=0, max_value=2**62),
        st.integers(min_value=0, max_value=2**30),
    ),
)


def stored_values(values):
    return st.builds(
        StoredValue,
        value=values,
        timestamp=st.one_of(
            st.builds(Timestamp, st.integers(min_value=0, max_value=2**62)),
            st.text(max_size=8),  # a forged, wrong-typed timestamp
            st.none(),
        ),
        signature=st.one_of(st.none(), st.binary(max_size=64)),
    )


payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(
                st.text(max_size=8),
                st.integers(min_value=-100, max_value=100),
                st.builds(Timestamp, st.integers(min_value=0, max_value=1000)),
            ),
            children,
            max_size=4,
        ),
        stored_values(children),
    ),
    max_leaves=12,
)


class TestRoundTrip:
    @given(payloads)
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_is_identity(self, payload):
        assert unpack_value(json.loads(json.dumps(pack_value(payload)))) == payload

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_frame_round_trip(self, payload):
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(payload))
        assert decoded == payload
        assert decoder.pending_bytes == 0

    def test_rpc_shaped_payloads(self):
        request = ("req", 17, 4, "write", ("x", ("v", 3), Timestamp(5, 1), b"\x00sig"))
        reply = ("rsp", 17, ("ok", StoredValue(("v", 3), Timestamp(5, 1), b"\x00sig")))
        for payload in (request, reply):
            (decoded,) = FrameDecoder().feed(encode_frame(payload))
            assert decoded == payload
            assert type(decoded) is tuple

    @given(
        st.integers(min_value=1, max_value=2**31),
        st.integers(min_value=0, max_value=10_000),
        st.text(max_size=16),
        st.lists(payloads, max_size=3).map(tuple),
    )
    @settings(max_examples=100, deadline=None)
    def test_fast_request_encoder_is_byte_identical(self, request_id, server, method, args):
        from repro.service.wire import encode_request_frame, request_tail

        tail = request_tail(method, args)
        fast = encode_request_frame(request_id, server, tail)
        assert fast == encode_frame(("req", request_id, server, method, args))

    def test_adversarially_large_and_empty_values(self):
        large = "A" * 1_000_000
        for value in (large, large.encode(), b"", "", [], (), {}, 0, None):
            (decoded,) = FrameDecoder().feed(encode_frame(value))
            assert decoded == value
            assert type(decoded) is type(value)

    def test_forged_maximum_timestamp_survives_the_wire(self):
        forged = Timestamp.forged_maximum()
        (decoded,) = FrameDecoder().feed(encode_frame(forged))
        assert decoded == forged and isinstance(decoded, Timestamp)

    def test_non_string_dict_keys_round_trip(self):
        history = {Timestamp(1): "a", Timestamp(2): "b", 7: "c"}
        (decoded,) = FrameDecoder().feed(encode_frame(history))
        assert decoded == history

    def test_unserialisable_object_is_rejected(self):
        with pytest.raises(WireFormatError):
            pack_value(object())


class TestShortReadResilience:
    @given(
        st.lists(payloads, min_size=1, max_size=5),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_chunking_yields_the_same_frames(self, frames, chunk_size):
        stream = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), chunk_size):
            decoded.extend(decoder.feed(stream[start : start + chunk_size]))
        assert decoded == frames
        assert decoder.pending_bytes == 0

    @given(st.lists(payloads, min_size=2, max_size=4), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_random_chunk_boundaries(self, frames, rnd):
        stream = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        position = 0
        while position < len(stream):
            step = rnd.randint(1, max(1, len(stream) - position))
            decoded.extend(decoder.feed(stream[position : position + step]))
            position += step
        assert decoded == frames

    def test_partial_frame_stays_buffered_without_output(self):
        frame = encode_frame({"k": list(range(50))})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []  # not even a full length prefix
        assert decoder.feed(frame[3:10]) == []  # prefix + partial body
        assert decoder.pending_bytes == 10
        (decoded,) = decoder.feed(frame[10:])
        assert decoded == {"k": list(range(50))}

    def test_frames_glued_to_a_partial_tail(self):
        first, second = encode_frame("one"), encode_frame("two")
        decoder = FrameDecoder()
        assert decoder.feed(first + second[:5]) == ["one"]
        assert decoder.feed(second[5:]) == ["two"]


class TestMalformedInput:
    def test_oversized_length_prefix_is_rejected_before_buffering(self):
        prefix = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="beyond"):
            FrameDecoder().feed(prefix)

    def test_oversized_encode_is_rejected(self):
        decoder_cap = FrameDecoder(max_frame_bytes=16)
        frame = encode_frame("x" * 64)
        with pytest.raises(WireFormatError):
            decoder_cap.feed(frame)

    def test_garbage_body_is_a_wire_error(self):
        body = b"not json at all"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="undecodable"):
            FrameDecoder().feed(frame)

    def test_unknown_tag_is_a_wire_error(self):
        body = json.dumps({"zz": 1}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="unknown wire tag"):
            FrameDecoder().feed(frame)

    def test_multi_key_object_is_a_wire_error(self):
        body = json.dumps({"a": 1, "b": 2}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="malformed wire tag"):
            FrameDecoder().feed(frame)

    def test_malformed_timestamp_body_is_a_wire_error(self):
        body = json.dumps({"ts": [1, 2, 3, 4]}).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(WireFormatError, match="malformed 'ts'"):
            FrameDecoder().feed(frame)
