"""Process-per-shard cluster deployments: lifecycle, health, teardown.

The contract under test is operational, not statistical: a
:class:`~repro.service.cluster.ClusterDeployment` must leave **zero orphan
processes** however it ends — a normal ``aclose``, Ctrl-C (SIGINT reaching
the children), or a shard server dying mid-flight — and must keep serving
the shards that remain.  The multi-process load partitioner is checked as
a pure function: the per-worker slices must reassemble exactly into the
single-process workload (keys, write versions, reader clients, writer
identities), or the merged report would quietly measure a different
experiment.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import time

import pytest

from repro.api import Deployment
from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError
from repro.service.cluster import ClusterDeployment, partition_load
from repro.service.load import ServiceLoadSpec
from repro.simulation.scenario import ScenarioSpec


def run(coroutine):
    return asyncio.run(coroutine)


def scenario() -> ScenarioSpec:
    return ScenarioSpec(system=ProbabilisticMaskingSystem(25, 10, 3))


def assert_no_orphans(pids) -> None:
    """Every pid must be gone from the process table (children are joined
    by ``aclose``, so a lingering zombie would still show up here)."""
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def wait_for_exit(deployment, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while any(deployment.process_health()) and time.monotonic() < deadline:
        time.sleep(0.05)


class TestClusterLifecycle:
    def test_normal_exit_leaves_no_orphans(self):
        async def main():
            cluster = ClusterDeployment(scenario(), shards=2, codec="binary", seed=7)
            async with cluster:
                pids = list(cluster.pids)
                assert len(pids) == 2
                assert cluster.processes_alive == 2
                assert await cluster.probe() == [True, True]
                client = cluster.new_register_client(
                    random.Random(3), deadline=2.0, quorum_pool=0
                )
                await client.write("x", ("hello", 1))
                outcome = await client.read("x")
                assert outcome.value == ("hello", 1)
            return pids

        pids = run(main())
        assert_no_orphans(pids)

    def test_aclose_is_idempotent(self):
        async def main():
            cluster = ClusterDeployment(scenario(), shards=1, seed=11)
            await cluster.start()
            pids = list(cluster.pids)
            await cluster.aclose()
            await cluster.aclose()
            return pids

        assert_no_orphans(run(main()))

    def test_sigint_to_children_leaves_no_orphans(self):
        """Ctrl-C reaches the whole foreground process group: the children
        shut their servers down on SIGINT and exit by themselves; the
        parent's ``aclose`` then has nothing left to kill."""

        async def main():
            cluster = ClusterDeployment(scenario(), shards=2, seed=13)
            await cluster.start()
            pids = list(cluster.pids)
            for pid in pids:
                os.kill(pid, signal.SIGINT)
            await asyncio.get_running_loop().run_in_executor(
                None, wait_for_exit, cluster
            )
            assert cluster.processes_alive == 0
            await cluster.aclose()
            return pids

        assert_no_orphans(run(main()))

    def test_crashed_shard_is_detected_and_torn_down(self):
        """A shard server dying mid-flight (SIGKILL: no cleanup handlers)
        flips its health bit and fails its probe; the surviving shard keeps
        serving, and teardown still leaves nothing behind."""

        async def main():
            cluster = ClusterDeployment(scenario(), shards=2, codec="binary", seed=17)
            await cluster.start()
            pids = list(cluster.pids)
            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while cluster.process_health()[0] and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            assert cluster.process_health() == [False, True]
            probes = await cluster.probe(timeout=0.5)
            assert probes[0] is False and probes[1] is True
            # The surviving shard still serves: pick a key it owns.
            client = cluster.new_register_client(
                random.Random(5), deadline=2.0, quorum_pool=0
            )
            key = next(
                f"k{i}" for i in range(64) if cluster.shard_for(f"k{i}") == 1
            )
            await client.write(key, ("still-up", 1))
            outcome = await client.read(key)
            assert outcome.value == ("still-up", 1)
            await cluster.aclose()
            return pids

        assert_no_orphans(run(main()))

    def test_start_failure_cleans_up_started_shards(self):
        """If any shard cannot come up, the shards that did are torn down
        before the error escapes (no half-started cluster leaks)."""

        async def main():
            cluster = ClusterDeployment(
                scenario(), shards=1, seed=19, start_timeout=0.0
            )
            with pytest.raises(Exception):
                await cluster.start()
            assert cluster._processes == []

        run(main())


class TestClusterFacade:
    def test_api_processes_builds_a_cluster_with_locks(self):
        async def main():
            deployment = (
                Deployment.builder(scenario())
                .processes(1)
                .codec("binary")
                .shards(2)
                .deadline(2.0)
                .seed(5)
                .build()
            )
            assert deployment.transport == "tcp"  # implied by processes()
            assert isinstance(deployment.sharded, ClusterDeployment)
            async with deployment:
                pids = list(deployment.sharded.pids)
                registers = deployment.connect()
                await registers.write("x", "hello")
                outcome = await registers.read("x")
                assert outcome.value == "hello"
                lock = deployment.lock_client("leader", client_id=1)
                # Cross-process deployments must default to a wall-clock
                # verify delay: a racing write in flight to another process
                # needs real time to land before a verify read can see it.
                assert lock.verify_delay == pytest.approx(0.02)
                grant = await lock.acquire()
                assert grant is not None
                await lock.release()
            return pids

        assert_no_orphans(run(main()))

    def test_codec_validation(self):
        with pytest.raises(ConfigurationError):
            Deployment.builder(scenario()).codec("msgpack")
        with pytest.raises(ConfigurationError):
            Deployment.builder(scenario()).processes(-1)

    def test_in_loop_deployments_keep_the_bare_yield(self):
        deployment = Deployment.builder(scenario()).seed(5).build()
        lock = deployment.lock_client("leader", client_id=1)
        assert lock.verify_delay == 0.0
        with pytest.raises(ConfigurationError):
            deployment.lock_client("leader", client_id=2, verify_delay=-0.5)


class TestPartitionLoad:
    def spec(self, processes: int, clients: int = 10, keys: int = 7, writes: int = 23):
        return ServiceLoadSpec(
            scenario=scenario(),
            clients=clients,
            reads_per_client=2,
            writes=writes,
            transport="tcp",
            shards=2,
            keys=keys,
            codec="binary",
            processes=processes,
            seed=3,
        )

    def test_partition_reassembles_the_global_workload(self):
        spec = self.spec(processes=3)
        addresses = [("127.0.0.1", 1), ("127.0.0.1", 2)]
        configs = partition_load(spec, addresses, random.Random(1))
        assert len(configs) == 3
        # Keys: disjoint cover of the global key list, global ranks intact.
        all_ranks = sorted(rank for c in configs for rank in c.key_ranks)
        assert all_ranks == list(range(spec.keys))
        for config in configs:
            assert list(config.key_ranks) == sorted(set(config.key_ranks))
        # Write versions: disjoint cover of the global version sequence,
        # and every version lands with the worker that owns its key.
        all_versions = sorted(v for c in configs for c_v in [c.versions] for v in c_v)
        assert all_versions == list(range(spec.writes))
        for config in configs:
            for version in config.versions:
                assert (version % spec.keys) in config.key_ranks
        # Readers: every client accounted for exactly once.
        assert sum(c.readers for c in configs) == spec.clients
        # Writer identities: globally disjoint blocks.
        bases = [c.writer_id_base for c in configs]
        assert len(set(bases)) == len(bases)
        for first, second in zip(sorted(bases), sorted(bases)[1:]):
            assert second - first >= spec.resolved_writers

    def test_single_worker_owns_everything(self):
        spec = self.spec(processes=1)
        (config,) = partition_load(spec, [("h", 1), ("h", 2)], random.Random(2))
        assert list(config.key_ranks) == list(range(spec.keys))
        assert list(config.versions) == list(range(spec.writes))
        assert config.readers == spec.clients

    def test_spec_validation_refuses_unpartitionable_loads(self):
        with pytest.raises(ConfigurationError):
            self.spec(processes=9, keys=7, clients=10)  # workers > keys
        with pytest.raises(ConfigurationError):
            self.spec(processes=5, keys=7, clients=4)  # workers > clients
        with pytest.raises(ConfigurationError):
            ServiceLoadSpec(
                scenario=scenario(),
                clients=4,
                reads_per_client=1,
                writes=4,
                transport="inproc",  # processes need real sockets
                processes=2,
                keys=4,
                seed=1,
            )
