"""Tests for the gossip/anti-entropy diffusion engine."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine
from repro.simulation.failures import FailurePlan
from repro.simulation.server import ByzantineForgeBehavior


def seed_one_server(cluster, variable="x", value="v", counter=1):
    cluster.server(0).handle_write(variable, value, Timestamp(counter, 0))


class TestGossipSpread:
    def test_coverage_reaches_everyone_without_failures(self):
        cluster = Cluster(30, seed=1)
        seed_one_server(cluster)
        engine = DiffusionEngine(cluster, fanout=3, rng=random.Random(1))
        assert engine.coverage("x", "v") == pytest.approx(1 / 30)
        engine.run_until_quiescent(["x"])
        assert engine.coverage("x", "v") == 1.0

    def test_coverage_monotonically_nondecreasing(self):
        cluster = Cluster(40, seed=2)
        seed_one_server(cluster)
        engine = DiffusionEngine(cluster, fanout=2, rng=random.Random(2))
        profile = engine.freshness_profile("x", "v", rounds=8)
        assert all(a <= b + 1e-12 for a, b in zip(profile, profile[1:]))
        assert profile[-1] > profile[0]

    def test_newer_values_overwrite_older_ones(self):
        cluster = Cluster(10, seed=3)
        # Server 0 has an old version everywhere, server 1 has the newest.
        for server in range(10):
            cluster.server(server).handle_write("x", "old", Timestamp(1, 0))
        cluster.server(1).handle_write("x", "new", Timestamp(2, 0))
        engine = DiffusionEngine(cluster, fanout=3, rng=random.Random(3))
        engine.run_until_quiescent(["x"])
        assert engine.coverage("x", "new") == 1.0

    def test_crashed_servers_do_not_receive(self):
        plan = FailurePlan(crashed=frozenset({5, 6}))
        cluster = Cluster(10, failure_plan=plan, seed=4)
        seed_one_server(cluster)
        engine = DiffusionEngine(cluster, fanout=3, rng=random.Random(4))
        engine.run_rounds(10, ["x"])
        assert cluster.server(5).storage.get("x") is None
        # Coverage counts only correct servers, so it can still reach 1.
        assert engine.coverage("x", "v") == 1.0

    def test_rounds_and_message_counters(self):
        cluster = Cluster(10, seed=5)
        seed_one_server(cluster)
        engine = DiffusionEngine(cluster, fanout=2, rng=random.Random(5))
        engine.run_rounds(3, ["x"])
        assert engine.rounds_run == 3
        assert engine.messages_pushed > 0

    def test_quiescence_bound(self):
        cluster = Cluster(10, seed=6)
        engine = DiffusionEngine(cluster, fanout=2, rng=random.Random(6))
        # Nothing to gossip: quiescent after the first round.
        assert engine.run_until_quiescent(["x"]) == 1


class TestGossipUnderAttack:
    def test_unverified_forgeries_do_not_spread(self):
        scheme = SignatureScheme(b"writer")
        n = 20
        plan = FailurePlan(
            byzantine={
                0: ByzantineForgeBehavior("FORGED", Timestamp.forged_maximum())
            }
        )
        cluster = Cluster(n, failure_plan=plan, seed=7)
        # A correct server holds a signed honest value.
        honest_ts = Timestamp(1, 0)
        cluster.server(1).handle_write(
            "x", "honest", honest_ts, signature=scheme.sign("x", "honest", honest_ts)
        )
        # The Byzantine server's storage claims a forged value.
        cluster.server(0).storage["x"] = cluster.server(0).handle_read("x")

        def verify(variable, stored):
            return scheme.verify(variable, stored.value, stored.timestamp, stored.signature)

        engine = DiffusionEngine(cluster, fanout=3, verify=verify, rng=random.Random(7))
        engine.run_rounds(10, ["x"])
        # The forged value never propagates to correct servers.
        for server_id in range(1, n):
            stored = cluster.server(server_id).storage.get("x")
            assert stored is None or stored.value == "honest"

    def test_validation(self):
        cluster = Cluster(5)
        with pytest.raises(ConfigurationError):
            DiffusionEngine(cluster, fanout=-1)
        with pytest.raises(ConfigurationError):
            DiffusionEngine(cluster, fanout=5)
        # fanout=0 is the identity engine, not a configuration error.
        assert DiffusionEngine(cluster, fanout=0).run_rounds(3) == 0
        engine = DiffusionEngine(cluster, fanout=2)
        with pytest.raises(ConfigurationError):
            engine.run_rounds(-1)
