"""Tests for the batched Monte-Carlo trial engine.

Two kinds of guarantees are pinned down here:

* **equivalence** — the batch engine estimates the same probabilities as
  the sequential protocol-stack oracle.  The engines share no RNG stream,
  so agreement is statistical: by Hoeffding, each engine's estimate of a
  Bernoulli mean over ``m`` trials deviates from the truth by more than
  ``t = sqrt(ln(2/δ) / (2m))`` with probability at most ``δ``; the two
  estimates therefore differ by more than ``t_seq + t_bat`` with
  probability below ``2δ``.  With ``δ = 1e-9`` per side the tests are
  deterministic for all practical purposes while still failing loudly on
  any systematic bias;
* **invariants** — batched access-set sampling produces exactly the
  uniform size-``q`` subsets the strategy promises (property-tested with
  hypothesis), failure masks are disjoint and correctly sized, and the
  chunked substreams make runs reproducible.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.core.strategy import ExplicitStrategy, UniformSubsetStrategy
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ProbabilisticRegister
from repro.quorum.base import sample_subset_batch
from repro.quorum.measures import load_of_strategy
from repro.simulation.batch import BatchTrialEngine, classify_threshold_votes
from repro.simulation.client import measure_system_load
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import (
    estimate_read_consistency,
    estimate_staleness_distribution,
)
from repro.simulation.scenario import ScenarioSpec

EQUIVALENCE_TRIALS = 10_000


def hoeffding_tolerance(trials: int, delta: float = 1e-9) -> float:
    """Deviation bound ``t`` with ``P(|p̂ - p| > t) <= delta`` (Hoeffding)."""
    return math.sqrt(math.log(2.0 / delta) / (2.0 * trials))


def two_sided_tolerance(trials_a: int, trials_b: int) -> float:
    """Tolerance for comparing two independent empirical means."""
    return hoeffding_tolerance(trials_a) + hoeffding_tolerance(trials_b)


class TestEngineEquivalence:
    """Batch and sequential engines agree within Chernoff-derived tolerance."""

    # A deliberately loose construction keeps the miss probability far from
    # 0/1, where disagreement is easiest to detect.
    SYSTEM = UniformEpsilonIntersectingSystem(25, 5)

    def _both(self, model, trials=EQUIVALENCE_TRIALS):
        sequential = estimate_read_consistency(
            self.SYSTEM, n=25, plan_factory=model, trials=trials, seed=42
        )
        batch = estimate_read_consistency(
            self.SYSTEM, n=25, plan_factory=model, trials=trials, seed=42, engine="batch"
        )
        return sequential, batch

    def test_no_failures(self):
        sequential, batch = self._both(None)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        assert batch.fabricated == sequential.fabricated == 0
        assert batch.stale == sequential.stale == 0

    def test_independent_crashes(self):
        sequential, batch = self._both(FailureModel.independent_crashes(0.3))
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        assert batch.fabricated == sequential.fabricated == 0

    def test_colluding_forgers(self):
        model = FailureModel.colluding_forgers(4, "FORGED", Timestamp.forged_maximum())
        sequential, batch = self._both(model)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        assert batch.fabricated_fraction == pytest.approx(
            sequential.fabricated_fraction, abs=tol
        )

    def test_tying_forgery_agreement_pins_the_deterministic_rule(self):
        # PR 2 known-gap regression: a forged timestamp that *ties* the honest
        # write used to be reply-order dependent sequentially and rejected by
        # the batch engine.  Both engines now apply the shared deterministic
        # tie rule, so they must agree on every outcome class.  Three value
        # configurations cover both tiebreak branches and the collision case:
        # repr('FORGED') < repr('v') (honest wins exhausted ties),
        # repr('zFORGED') > repr('v') (forgery wins them), and a forged value
        # equal to the honest one (the pairs merge).
        for fabricated_value in ("FORGED", "zFORGED", "v"):
            model = FailureModel.colluding_forgers(4, fabricated_value, Timestamp(1, 0))
            sequential, batch = self._both(model)
            tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
            assert batch.fresh_fraction == pytest.approx(
                sequential.fresh_fraction, abs=tol
            ), fabricated_value
            assert batch.fabricated_fraction == pytest.approx(
                sequential.fabricated_fraction, abs=tol
            ), fabricated_value
            # A losing tie is not stale — the forgery carries the winning
            # timestamp — and an equal-value forgery cannot fabricate at all.
            assert batch.stale == sequential.stale == 0
            if fabricated_value == "v":
                assert batch.fabricated == sequential.fabricated == 0

    def test_silent_byzantine_and_replay(self):
        for model in (FailureModel.random_byzantine(4), FailureModel.replay_attack(4)):
            sequential, batch = self._both(model, trials=4_000)
            tol = two_sided_tolerance(4_000, 4_000)
            assert batch.fresh_fraction == pytest.approx(
                sequential.fresh_fraction, abs=tol
            )
            assert batch.fabricated == sequential.fabricated == 0

    def test_matches_analytical_epsilon(self):
        # The batch engine on its own must track the exact closed form.
        batch = estimate_read_consistency(
            self.SYSTEM, n=25, trials=40_000, seed=7, engine="batch"
        )
        assert batch.error_fraction == pytest.approx(
            self.SYSTEM.epsilon, abs=hoeffding_tolerance(40_000)
        )

    def test_staleness_distribution_agrees(self):
        sequential = estimate_staleness_distribution(
            self.SYSTEM, n=25, writes=4, trials=3_000, seed=9
        )
        batch = estimate_staleness_distribution(
            self.SYSTEM, n=25, writes=4, trials=EQUIVALENCE_TRIALS, seed=9, engine="batch"
        )
        tol = two_sided_tolerance(3_000, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        # Mean lag over writes=4 is bounded by 4; scale the tolerance with it.
        assert batch.mean_lag == pytest.approx(sequential.mean_lag, abs=4 * tol)

    def test_gossip_drives_staleness_down_in_batch_mode(self):
        without = estimate_staleness_distribution(
            self.SYSTEM, n=25, writes=4, trials=4_000, seed=13, engine="batch"
        )
        with_gossip = estimate_staleness_distribution(
            self.SYSTEM,
            n=25,
            writes=4,
            gossip_rounds_between_writes=3,
            gossip_fanout=3,
            trials=4_000,
            seed=13,
            engine="batch",
        )
        assert with_gossip.fresh_fraction > without.fresh_fraction
        assert with_gossip.mean_lag < without.mean_lag


class TestByzantineEngineEquivalence:
    """Masking and dissemination scenarios agree across engines (Hoeffding).

    The systems are deliberately loose (mid-range epsilon) so every outcome
    class — fresh, stale/⊥ and, for masking, fabricated — has probability
    far from 0/1, where a systematic divergence is easiest to detect.
    """

    # Rk(25, 10) with b=5: threshold k = ceil(100/50) = 2.
    MASKING = ProbabilisticMaskingSystem(25, 10, 5)
    DISSEMINATION = ProbabilisticDisseminationSystem(25, 5, 4)

    def _both(self, spec, trials=EQUIVALENCE_TRIALS):
        sequential = estimate_read_consistency(spec, trials=trials, seed=42)
        batch = estimate_read_consistency(spec, trials=trials, seed=42, engine="batch")
        return sequential, batch

    def test_masking_colluding_forgers(self):
        spec = ScenarioSpec(
            system=self.MASKING,
            failure_model=FailureModel.colluding_forgers(
                5, "FORGED", Timestamp.forged_maximum()
            ),
        )
        assert spec.read_semantics().threshold == 2
        sequential, batch = self._both(spec)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        assert batch.fabricated_fraction == pytest.approx(
            sequential.fabricated_fraction, abs=tol
        )
        # The threshold must actually bite: fabrication needs >= 2 forgers in
        # the read quorum, so it is rarer than under the benign single-vote
        # read of the same system and failure model.
        benign = ScenarioSpec(
            system=self.MASKING,
            failure_model=spec.failure_model,
            register_kind="plain",
        )
        benign_batch = estimate_read_consistency(
            benign, trials=EQUIVALENCE_TRIALS, seed=42, engine="batch"
        )
        assert batch.fabricated < benign_batch.fabricated

    def test_masking_silent_and_crash_models(self):
        for model in (
            FailureModel.random_byzantine(5),
            FailureModel.independent_crashes(0.2),
        ):
            spec = ScenarioSpec(system=self.MASKING, failure_model=model)
            sequential, batch = self._both(spec, trials=4_000)
            tol = two_sided_tolerance(4_000, 4_000)
            assert batch.fresh_fraction == pytest.approx(
                sequential.fresh_fraction, abs=tol
            )
            assert batch.fabricated == sequential.fabricated == 0

    def test_dissemination_forgers_are_discarded(self):
        spec = ScenarioSpec(
            system=self.DISSEMINATION,
            failure_model=FailureModel.colluding_forgers(
                4, "FORGED", Timestamp.forged_maximum()
            ),
        )
        assert spec.read_semantics().self_verifying
        sequential, batch = self._both(spec)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        # Signature verification makes fabrication impossible on both engines.
        assert batch.fabricated == sequential.fabricated == 0

    def test_dissemination_silent_and_replay(self):
        for model in (FailureModel.random_byzantine(4), FailureModel.replay_attack(4)):
            spec = ScenarioSpec(system=self.DISSEMINATION, failure_model=model)
            sequential, batch = self._both(spec, trials=4_000)
            tol = two_sided_tolerance(4_000, 4_000)
            assert batch.fresh_fraction == pytest.approx(
                sequential.fresh_fraction, abs=tol
            )
            assert batch.fabricated == sequential.fabricated == 0

    def test_masking_staleness_distribution_agrees(self):
        spec = ScenarioSpec(
            system=self.MASKING,
            failure_model=FailureModel.colluding_forgers(
                5, "FORGED", Timestamp.forged_maximum()
            ),
        )
        sequential = estimate_staleness_distribution(
            spec, writes=3, trials=3_000, seed=9
        )
        batch = estimate_staleness_distribution(
            spec, writes=3, trials=EQUIVALENCE_TRIALS, seed=9, engine="batch"
        )
        tol = two_sided_tolerance(3_000, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        # Mean lag over writes=3 is bounded by 3; scale the tolerance with it.
        assert batch.mean_lag == pytest.approx(sequential.mean_lag, abs=3 * tol)

    def test_dissemination_staleness_distribution_agrees(self):
        spec = ScenarioSpec(
            system=self.DISSEMINATION,
            failure_model=FailureModel.replay_attack(4),
        )
        sequential = estimate_staleness_distribution(
            spec, writes=4, trials=3_000, seed=15
        )
        batch = estimate_staleness_distribution(
            spec, writes=4, trials=EQUIVALENCE_TRIALS, seed=15, engine="batch"
        )
        tol = two_sided_tolerance(3_000, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(sequential.fresh_fraction, abs=tol)
        assert batch.mean_lag == pytest.approx(sequential.mean_lag, abs=4 * tol)


class TestThresholdVoteKernel:
    """Property tests for the threshold-vote classification kernel."""

    @given(
        votes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=12),
            ),
            min_size=1,
            max_size=64,
        ),
        threshold=st.integers(min_value=1, max_value=13),
        outranks=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_masks_partition_every_trial(self, votes, threshold, outranks):
        honest = np.array([h for h, _ in votes])
        forged = np.array([f for _, f in votes])
        fresh, stale, empty, fabricated = classify_threshold_votes(
            honest, forged, threshold, outranks
        )
        total = (
            fresh.astype(int) + stale.astype(int) + empty.astype(int) + fabricated.astype(int)
        )
        assert (total == 1).all()
        # Fabrication requires the forgery to clear the threshold AND outrank.
        assert not fabricated[forged < threshold].any()
        if not outranks:
            assert not fabricated.any()

    @given(
        votes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=64,
        ),
        outranks=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_k_equals_one_reduces_to_benign_classifier(self, votes, outranks):
        honest = np.array([h for h, _ in votes])
        forged = np.array([f for _, f in votes])
        fresh, stale, empty, fabricated = classify_threshold_votes(
            honest, forged, 1, outranks
        )
        # The benign Section 3.1 classifier, written as set membership.
        has_fresh = honest >= 1
        has_forged = forged >= 1
        assert (fresh == (has_fresh & ~(has_forged & outranks))).all()
        assert (fabricated == (has_forged & outranks)).all()
        assert (stale == (has_forged & ~outranks & ~has_fresh)).all()
        assert (empty == (~has_fresh & ~has_forged)).all()

    @given(
        votes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=12),
            ),
            min_size=1,
            max_size=32,
        ),
        threshold=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_raising_threshold_never_increases_fabrication(self, votes, threshold):
        honest = np.array([h for h, _ in votes])
        forged = np.array([f for _, f in votes])
        _, _, _, fab_low = classify_threshold_votes(honest, forged, threshold, True)
        _, _, _, fab_high = classify_threshold_votes(honest, forged, threshold + 1, True)
        assert fab_high.sum() <= fab_low.sum()

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            classify_threshold_votes(np.array([1]), np.array([0]), 0, False)


class TestBatchSamplingInvariants:
    """Property tests: batched access sets respect the strategy's contract."""

    @given(
        n=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sample_subset_batch_rows_are_uniform_subsets(self, n, data):
        size = data.draw(st.integers(min_value=1, max_value=n))
        trials = data.draw(st.integers(min_value=0, max_value=40))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        matrix = sample_subset_batch(n, size, trials, np.random.default_rng(seed))
        assert matrix.shape == (trials, size)
        assert np.issubdtype(matrix.dtype, np.integer)
        if trials:
            assert matrix.min() >= 0 and matrix.max() < n
            # Every row is a subset: exactly `size` *distinct* server ids.
            for row in matrix:
                assert len(set(row.tolist())) == size

    @given(
        n=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_strategy_membership_row_sums(self, n, data):
        size = data.draw(st.integers(min_value=1, max_value=n))
        trials = data.draw(st.integers(min_value=0, max_value=40))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        strategy = UniformSubsetStrategy(n, size)
        member = strategy.sample_batch_membership(n, trials, np.random.default_rng(seed))
        assert member.shape == (trials, n)
        assert member.dtype == bool
        assert (member.sum(axis=1) == size).all()

    def test_uniform_strategy_rejects_mismatched_universe(self):
        strategy = UniformSubsetStrategy(10, 3)
        with pytest.raises(ConfigurationError):
            strategy.sample_batch_membership(11, 5, np.random.default_rng(0))

    def test_explicit_strategy_membership_rows_come_from_support(self):
        quorums = [{0, 1, 2}, {2, 3}, {4}]
        strategy = ExplicitStrategy(quorums, weights=[0.5, 0.3, 0.2])
        member = strategy.sample_batch_membership(6, 200, np.random.default_rng(1))
        support = {frozenset(q) for q in quorums}
        for row in member:
            assert frozenset(np.flatnonzero(row).tolist()) in support

    def test_base_class_fallback_matches_membership_contract(self):
        # Strategies that do not override the batched sampler still work
        # through the AccessStrategy fallback (one sample() per trial).
        strategy = ExplicitStrategy([{0, 1}, {2}])
        fallback = super(ExplicitStrategy, strategy).sample_batch_membership
        member = fallback(4, 50, np.random.default_rng(2))
        assert member.shape == (50, 4)
        support = {frozenset({0, 1}), frozenset({2})}
        for row in member:
            assert frozenset(np.flatnonzero(row).tolist()) in support

    def test_failure_masks_are_disjoint_and_sized(self):
        model = FailureModel.colluding_forgers(7, "F", Timestamp.forged_maximum())
        masks = model.sample_masks(30, 100, np.random.default_rng(3))
        assert masks.forgers.sum() == 7 * 100
        assert not masks.crashed.any() and not masks.silent.any()
        crashes = FailureModel.random_crashes(5).sample_masks(
            30, 100, np.random.default_rng(4)
        )
        assert (crashes.crashed.sum(axis=1) == 5).all()
        independent = FailureModel.independent_crashes(0.25).sample_masks(
            30, 2_000, np.random.default_rng(5)
        )
        assert independent.crashed.mean() == pytest.approx(0.25, abs=0.02)

    def test_failure_model_bind_produces_matching_plans(self):
        model = FailureModel.random_byzantine(3)
        plan = model.bind(20)(random.Random(0))
        assert len(plan.byzantine) == 3
        assert not plan.crashed


class TestEngineDispatchAndDeterminism:
    SYSTEM = UniformEpsilonIntersectingSystem(25, 8)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(self.SYSTEM, n=25, trials=10, engine="warp")

    def test_batch_engine_requires_declarative_specs(self):
        factory = lambda cluster, rng: ProbabilisticRegister(self.SYSTEM, cluster, rng=rng)
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(factory, n=25, trials=10, engine="batch")
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(
                self.SYSTEM,
                n=25,
                plan_factory=lambda rng: None,
                trials=10,
                engine="batch",
            )

    def test_sequential_engine_accepts_declarative_specs(self):
        report = estimate_read_consistency(
            self.SYSTEM,
            n=25,
            plan_factory=FailureModel.independent_crashes(0.1),
            trials=50,
            seed=1,
        )
        assert report.trials == 50

    def test_batch_runs_are_reproducible(self):
        first = estimate_read_consistency(
            self.SYSTEM, n=25, trials=5_000, seed=21, engine="batch"
        )
        second = estimate_read_consistency(
            self.SYSTEM, n=25, trials=5_000, seed=21, engine="batch"
        )
        assert (first.fresh, first.stale, first.empty, first.fabricated) == (
            second.fresh,
            second.stale,
            second.empty,
            second.fabricated,
        )

    def test_chunked_execution_covers_every_trial(self):
        engine = BatchTrialEngine(self.SYSTEM, seed=0, chunk_size=700)
        report = engine.estimate_read_consistency(5_000)
        assert report.trials == 5_000
        assert report.fresh + report.stale + report.empty + report.fabricated == 5_000

    def test_trial_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(self.SYSTEM, n=25, trials=0, engine="batch")
        with pytest.raises(ConfigurationError):
            BatchTrialEngine(self.SYSTEM, chunk_size=0)

    def test_tying_forgery_is_modelled_for_single_write_scenarios(self):
        # A forgery whose timestamp equals the honest write's resolves through
        # the deterministic tie rule of repro.protocol.selection, so the
        # single-write estimator now models it instead of rejecting it.
        tying = FailureModel.colluding_forgers(3, "FORGED", Timestamp(1, 0))
        report = estimate_read_consistency(
            self.SYSTEM, n=25, plan_factory=tying, trials=100, engine="batch"
        )
        assert report.trials == 100

    def test_tying_forgery_is_still_fenced_for_write_histories(self):
        # Staleness lags are identified by timestamp, so a forgery tying an
        # intermediate version stays rejected rather than silently miscounted.
        with pytest.raises(ConfigurationError, match="ties a"):
            estimate_staleness_distribution(
                self.SYSTEM, n=25, writes=4, plan_factory=FailureModel.colluding_forgers(
                    3, "FORGED", Timestamp(3, 0)
                ), trials=100, engine="batch",
            )
        # Non-tying forgeries (the paper's forged_maximum) still run.
        report = estimate_read_consistency(
            self.SYSTEM,
            n=25,
            plan_factory=FailureModel.colluding_forgers(3, "F", Timestamp.forged_maximum()),
            trials=100,
            engine="batch",
        )
        assert report.trials == 100


class TestBatchLoadMeasurement:
    def test_measure_system_load_engines_agree(self):
        system = UniformEpsilonIntersectingSystem(50, 10)
        sequential = measure_system_load(system, accesses=6_000, seed=1)
        batch = measure_system_load(system, accesses=6_000, seed=1, engine="batch")
        assert batch.accesses == 6_000
        assert sum(batch.per_server_counts) == 6_000 * 10
        # Analytical load is q/n = 0.2 for every server.
        assert batch.max_load == pytest.approx(0.2, abs=0.03)
        assert batch.mean_load == pytest.approx(sequential.mean_load, abs=1e-9)

    def test_load_of_strategy_empirical_mode(self):
        quorums = [frozenset({0, 1, 2}), frozenset({2, 3, 4})]
        weights = [0.6, 0.4]
        exact = load_of_strategy(quorums, weights, 5)
        for engine in ("batch", "sequential"):
            empirical = load_of_strategy(
                quorums, weights, 5, empirical_trials=20_000, seed=3, engine=engine
            )
            assert empirical == pytest.approx(exact, abs=hoeffding_tolerance(20_000))
        with pytest.raises(ConfigurationError):
            load_of_strategy(quorums, weights, 5, empirical_trials=0)
        with pytest.raises(ConfigurationError):
            load_of_strategy(quorums, weights, 5, empirical_trials=100, engine="warp")
