"""Tests for the message-passing network model."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventScheduler
from repro.simulation.network import ConstantLatency, Message, Network, UniformLatency


class TestLatencyModels:
    def test_constant_latency(self):
        model = ConstantLatency(2.5)
        assert model.sample(random.Random(0)) == 2.5
        with pytest.raises(SimulationError):
            ConstantLatency(-1.0)

    def test_uniform_latency_range(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        for _ in range(100):
            value = model.sample(rng)
            assert 1.0 <= value <= 3.0
        with pytest.raises(SimulationError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(SimulationError):
            UniformLatency(-1.0, 1.0)


class TestAsynchronousDelivery:
    def test_message_delivered_after_latency(self):
        scheduler = EventScheduler()
        network = Network(scheduler, latency=ConstantLatency(2.0))
        received = []
        message = Message(sender=-1, recipient=3, kind="read", payload="x")
        assert network.send(message, received.append)
        assert received == []
        scheduler.run()
        assert received == [message]
        assert scheduler.now == 2.0
        assert network.messages_delivered == 1

    def test_dropped_messages_never_arrive(self):
        scheduler = EventScheduler()
        network = Network(scheduler, drop_probability=1.0 - 1e-12, rng=random.Random(0))
        received = []
        sent = network.send(Message(-1, 0, "read", None), received.append)
        assert not sent
        scheduler.run()
        assert received == []
        assert network.messages_dropped == 1

    def test_invalid_drop_probability(self):
        with pytest.raises(SimulationError):
            Network(drop_probability=1.0)
        with pytest.raises(SimulationError):
            Network(drop_probability=-0.1)


class TestSynchronousPath:
    def test_reliable_network_delivers_everything(self):
        network = Network()
        for i in range(20):
            assert network.send_sync(Message(-1, i, "write", None))
        assert network.messages_sent == 20
        assert network.messages_dropped == 0
        assert network.messages_delivered == 20

    def test_drop_rate_is_respected(self):
        network = Network(drop_probability=0.3, rng=random.Random(42))
        delivered = sum(
            1 for i in range(5000) if network.send_sync(Message(-1, i % 10, "read", None))
        )
        assert delivered / 5000 == pytest.approx(0.7, abs=0.03)


class TestPartitions:
    def test_cross_partition_messages_drop(self):
        network = Network()
        network.partition([{0, 1}, {2, 3}])
        assert network.can_communicate(0, 1)
        assert not network.can_communicate(0, 2)
        assert not network.send_sync(Message(0, 2, "read", None))
        assert network.send_sync(Message(0, 1, "read", None))

    def test_unlisted_nodes_can_reach_everyone(self):
        network = Network()
        network.partition([{0, 1}, {2, 3}])
        # Node 9 appears in no group: it talks to both sides.
        assert network.can_communicate(9, 0)
        assert network.can_communicate(9, 3)

    def test_heal_partition(self):
        network = Network()
        network.partition([{0}, {1}])
        assert not network.can_communicate(0, 1)
        network.heal_partition()
        assert network.can_communicate(0, 1)
        assert network.send_sync(Message(0, 1, "read", None))
