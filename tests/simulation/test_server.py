"""Tests for replica servers and their failure behaviours."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.protocol.timestamps import Timestamp
from repro.simulation.server import (
    ByzantineForgeBehavior,
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    CorrectBehavior,
    CrashedBehavior,
    ReplicaServer,
    StoredValue,
)


class TestCorrectBehavior:
    def test_stores_and_returns_latest(self):
        server = ReplicaServer(0)
        assert server.handle_write("x", "v1", Timestamp(1, 0))
        assert server.handle_write("x", "v2", Timestamp(2, 0))
        stored = server.handle_read("x")
        assert stored.value == "v2"
        assert server.writes_handled == 2
        assert server.reads_handled == 1

    def test_ignores_stale_writes(self):
        server = ReplicaServer(0)
        server.handle_write("x", "new", Timestamp(5, 0))
        server.handle_write("x", "old", Timestamp(2, 0))
        assert server.handle_read("x").value == "new"

    def test_unknown_variable_reads_none(self):
        assert ReplicaServer(0).handle_read("missing") is None

    def test_variables_are_independent(self):
        server = ReplicaServer(0)
        server.handle_write("x", 1, Timestamp(1, 0))
        server.handle_write("y", 2, Timestamp(1, 0))
        assert server.handle_read("x").value == 1
        assert server.handle_read("y").value == 2


class TestCrashAndRecovery:
    def test_crashed_server_is_silent(self):
        server = ReplicaServer(0)
        server.handle_write("x", "v", Timestamp(1, 0))
        server.crash()
        assert server.is_crashed
        assert not server.handle_write("x", "v2", Timestamp(2, 0))
        assert server.handle_read("x") is None

    def test_recovery_restores_state_and_behavior(self):
        server = ReplicaServer(0)
        server.handle_write("x", "v", Timestamp(1, 0))
        server.crash()
        server.recover()
        assert not server.is_crashed
        assert server.handle_read("x").value == "v"

    def test_double_crash_then_recover_keeps_original_behavior(self):
        server = ReplicaServer(0, behavior=ByzantineSilentBehavior())
        server.crash()
        server.crash()
        server.recover()
        assert server.is_byzantine

    def test_negative_id_rejected(self):
        with pytest.raises(SimulationError):
            ReplicaServer(-1)


class TestByzantineBehaviors:
    def test_silent_behavior(self):
        server = ReplicaServer(0, behavior=ByzantineSilentBehavior())
        assert server.is_byzantine
        assert not server.handle_write("x", "v", Timestamp(1, 0))
        assert server.handle_read("x") is None

    def test_replay_behavior_serves_first_value(self):
        server = ReplicaServer(0, behavior=ByzantineReplayBehavior())
        server.handle_write("x", "v1", Timestamp(1, 0))
        server.handle_write("x", "v2", Timestamp(2, 0))
        assert server.handle_read("x").value == "v1"

    def test_replay_behavior_without_writes(self):
        server = ReplicaServer(0, behavior=ByzantineReplayBehavior())
        assert server.handle_read("x") is None

    def test_forge_behavior_fabricates(self):
        forged_ts = Timestamp.forged_maximum()
        server = ReplicaServer(0, behavior=ByzantineForgeBehavior("FORGED", forged_ts))
        assert server.handle_write("x", "honest", Timestamp(1, 0))  # pretends to ack
        reply = server.handle_read("x")
        assert reply.value == "FORGED"
        assert reply.timestamp == forged_ts
        assert reply.signature == b"forged"


class TestGossipMerge:
    def test_merge_adopts_newer_value(self):
        server = ReplicaServer(0)
        server.handle_write("x", "old", Timestamp(1, 0))
        changed = server.merge("x", StoredValue("new", Timestamp(2, 0)))
        assert changed
        assert server.handle_read("x").value == "new"

    def test_merge_rejects_older_value(self):
        server = ReplicaServer(0)
        server.handle_write("x", "new", Timestamp(5, 0))
        assert not server.merge("x", StoredValue("old", Timestamp(1, 0)))

    def test_merge_into_empty_storage(self):
        server = ReplicaServer(0)
        assert server.merge("x", StoredValue("v", Timestamp(1, 0)))

    def test_crashed_and_byzantine_servers_ignore_gossip(self):
        crashed = ReplicaServer(0)
        crashed.crash()
        assert not crashed.merge("x", StoredValue("v", Timestamp(1, 0)))
        byzantine = ReplicaServer(1, behavior=ByzantineSilentBehavior())
        assert not byzantine.merge("x", StoredValue("v", Timestamp(1, 0)))
