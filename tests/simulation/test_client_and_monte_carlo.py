"""Tests for the workload client and the Monte-Carlo consistency estimators."""

from __future__ import annotations

import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.strategy import ExplicitStrategy
from repro.exceptions import ConfigurationError
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.client import LoadMeasurement, WorkloadClient, measure_system_load
from repro.simulation.failures import FailurePlan
from repro.simulation.monte_carlo import (
    estimate_read_consistency,
    estimate_staleness_distribution,
)


class TestWorkloadClient:
    def test_empirical_load_matches_analytical(self):
        system = UniformEpsilonIntersectingSystem(50, 10)
        measurement = measure_system_load(system, accesses=8000, seed=1)
        # Analytical load is q/n = 0.2 for every server.
        assert measurement.max_load == pytest.approx(0.2, abs=0.03)
        assert measurement.mean_load == pytest.approx(0.2, abs=0.01)

    def test_skewed_strategy_shows_up_in_measurement(self):
        strategy = ExplicitStrategy([{0, 1}, {2, 3}], weights=[0.9, 0.1])
        client = WorkloadClient(4, strategy, random.Random(2))
        measurement = client.run(4000)
        assert measurement.per_server_counts[0] > measurement.per_server_counts[2]
        assert measurement.busiest_servers(2) == [0, 1] or measurement.busiest_servers(2) == [1, 0]

    def test_empty_measurement(self):
        strategy = ExplicitStrategy([{0}])
        client = WorkloadClient(3, strategy)
        measurement = client.measurement()
        assert measurement.accesses == 0
        assert measurement.max_load == 0.0
        assert measurement.empirical_loads == [0.0, 0.0, 0.0]

    def test_validation(self):
        strategy = ExplicitStrategy([{0}])
        with pytest.raises(ConfigurationError):
            WorkloadClient(0, strategy)
        client = WorkloadClient(1, strategy)
        with pytest.raises(ConfigurationError):
            client.run(-1)
        bad = WorkloadClient(1, ExplicitStrategy([{5}]))
        with pytest.raises(ConfigurationError):
            bad.access_once()


class TestConsistencyEstimator:
    def test_perfect_consistency_without_failures(self):
        system = UniformEpsilonIntersectingSystem.for_epsilon(25, 1e-3)
        report = estimate_read_consistency(
            lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
            n=25,
            trials=100,
            seed=0,
        )
        assert report.trials == 100
        assert report.fresh_fraction >= 0.97
        assert report.fabricated == 0
        assert "ConsistencyReport" in str(report)

    def test_measured_error_tracks_analytical_epsilon(self):
        # Use a deliberately loose construction so the error is measurable.
        system = UniformEpsilonIntersectingSystem(25, 5)
        report = estimate_read_consistency(
            lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
            n=25,
            trials=400,
            seed=1,
        )
        assert report.error_fraction == pytest.approx(system.epsilon, abs=0.08)

    def test_crash_failures_increase_error(self):
        system = UniformEpsilonIntersectingSystem(25, 6)
        baseline = estimate_read_consistency(
            lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
            n=25,
            trials=200,
            seed=2,
        )
        crashing = estimate_read_consistency(
            lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
            n=25,
            plan_factory=lambda rng: FailurePlan.independent_crashes(25, 0.3, rng=rng),
            trials=200,
            seed=2,
        )
        assert crashing.fresh_fraction <= baseline.fresh_fraction + 0.02

    def test_trial_validation(self):
        system = UniformEpsilonIntersectingSystem(25, 10)
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(
                lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng),
                n=25,
                trials=0,
            )


class TestStalenessEstimator:
    def _factory(self, system):
        return lambda cluster, rng: ProbabilisticRegister(system, cluster, rng=rng)

    def test_reads_are_mostly_fresh_with_tight_epsilon(self):
        system = UniformEpsilonIntersectingSystem.for_epsilon(25, 1e-3)
        report = estimate_staleness_distribution(
            self._factory(system), n=25, writes=4, trials=60, seed=3
        )
        assert report.fresh_fraction >= 0.9
        assert report.mean_lag <= 0.5
        assert sum(report.lag_histogram().values()) == 60

    def test_gossip_reduces_staleness(self):
        # A loose construction misses often; gossip between writes repairs it.
        system = UniformEpsilonIntersectingSystem(25, 4)
        without = estimate_staleness_distribution(
            self._factory(system), n=25, writes=4, trials=150, seed=4
        )
        with_gossip = estimate_staleness_distribution(
            self._factory(system),
            n=25,
            writes=4,
            gossip_rounds_between_writes=3,
            gossip_fanout=3,
            trials=150,
            seed=4,
        )
        assert with_gossip.fresh_fraction >= without.fresh_fraction

    def test_validation(self):
        system = UniformEpsilonIntersectingSystem(25, 10)
        with pytest.raises(ConfigurationError):
            estimate_staleness_distribution(self._factory(system), n=25, writes=0)
        with pytest.raises(ConfigurationError):
            estimate_staleness_distribution(self._factory(system), n=25, trials=0)
