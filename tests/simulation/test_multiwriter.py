"""Multi-writer contention: engine equivalence + exhaustive interleavings.

Two pins on the multi-writer semantics introduced with
``ScenarioSpec(writers=...)``:

* **statistical equivalence** — the sequential oracle and the batch engine
  estimate the same outcome distribution for 2–4 contending writers, under
  benign, crash and forger failure models, within Hoeffding tolerances
  (same methodology as ``test_batch_engine.py``);
* **exhaustive interleavings** — on a 3-node universe with singleton
  quorums, *every* combination of (writer-1 quorum, writer-2 quorum, read
  quorum) × both write application orders is enumerated, and the protocol
  stack's read must equal the shared selection rule's prediction: the
  visible writer with the highest writer-id-tie-broken timestamp wins,
  independent of arrival order.
"""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import (
    estimate_read_consistency,
    multiwriter_values,
)
from repro.simulation.scenario import ScenarioSpec

EQUIVALENCE_TRIALS = 10_000


def hoeffding_tolerance(trials: int, delta: float = 1e-9) -> float:
    """Deviation bound ``t`` with ``P(|p̂ - p| > t) <= delta`` (Hoeffding)."""
    return math.sqrt(math.log(2.0 / delta) / (2.0 * trials))


def two_sided_tolerance(trials_a: int, trials_b: int) -> float:
    return hoeffding_tolerance(trials_a) + hoeffding_tolerance(trials_b)


class TestMultiwriterEngineEquivalence:
    """Both engines, 2–4 contending writers, same outcome distribution."""

    SYSTEM = UniformEpsilonIntersectingSystem(25, 5)

    def _both(self, writers, model=None, trials=EQUIVALENCE_TRIALS):
        spec = ScenarioSpec(
            system=self.SYSTEM,
            failure_model=model or FailureModel.none(),
            writers=writers,
        )
        sequential = estimate_read_consistency(spec, trials=trials, seed=42)
        batch = estimate_read_consistency(
            spec, trials=trials, seed=42, engine="batch"
        )
        return sequential, batch

    @pytest.mark.parametrize("writers", [2, 3, 4])
    def test_benign_contention(self, writers):
        sequential, batch = self._both(writers)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(
            sequential.fresh_fraction, abs=tol
        ), f"writers={writers}"
        # Under contention a read can land on a losing writer's quorum:
        # stale is a real outcome class now, and the engines must agree on
        # its mass too, not only on fresh.
        assert batch.stale / batch.trials == pytest.approx(
            sequential.stale / sequential.trials, abs=tol
        ), f"writers={writers}"
        assert batch.fabricated == sequential.fabricated == 0

    @pytest.mark.parametrize("writers", [2, 4])
    def test_contention_under_crashes(self, writers):
        sequential, batch = self._both(
            writers, FailureModel.independent_crashes(0.3)
        )
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(
            sequential.fresh_fraction, abs=tol
        )
        assert batch.fabricated == sequential.fabricated == 0

    @pytest.mark.parametrize("writers", [2, 3])
    def test_contention_under_colluding_forgers(self, writers):
        model = FailureModel.colluding_forgers(
            4, "FORGED", Timestamp.forged_maximum()
        )
        sequential, batch = self._both(writers, model)
        tol = two_sided_tolerance(EQUIVALENCE_TRIALS, EQUIVALENCE_TRIALS)
        assert batch.fresh_fraction == pytest.approx(
            sequential.fresh_fraction, abs=tol
        )
        assert batch.fabricated_fraction == pytest.approx(
            sequential.fabricated_fraction, abs=tol
        )

    def test_single_writer_reduces_to_the_classic_estimate(self):
        # writers=1 must be bit-identical to the pre-contention path: same
        # seed, same engine, same counts.
        spec = ScenarioSpec(system=self.SYSTEM, failure_model=FailureModel.none())
        classic = estimate_read_consistency(
            self.SYSTEM, n=25, trials=2_000, seed=7, engine="batch"
        )
        declarative = estimate_read_consistency(
            spec, trials=2_000, seed=7, engine="batch"
        )
        assert (classic.fresh, classic.stale, classic.empty, classic.fabricated) == (
            declarative.fresh,
            declarative.stale,
            declarative.empty,
            declarative.fabricated,
        )

    def test_multiwriter_values_are_attributable(self):
        assert multiwriter_values("v", 1) == ["v"]
        assert multiwriter_values("v", 3) == [("v", 0), ("v", 1), ("v", 2)]

    def test_writer_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                system=self.SYSTEM,
                failure_model=FailureModel.none(),
                writers=0,
            )


class ScriptedSystem(UniformEpsilonIntersectingSystem):
    """Replays a fixed script of quorums instead of sampling the strategy."""

    def __init__(self, n, quorum_size, script):
        super().__init__(n, quorum_size)
        self._script = [frozenset(q) for q in script]

    def sample_quorum(self, rng=None):
        return self._script.pop(0)


class TestExhaustiveInterleavings:
    """3 nodes, singleton quorums, 2 writers: every case, both orders.

    Singleton quorums on three nodes are the smallest configuration where
    quorums can genuinely miss each other, so all four outcome shapes
    appear: the read sees both writers (winner by writer-id tiebreak),
    only the winning writer (fresh), only the losing one (stale), or
    neither (empty).  The expected label comes straight from the shared
    selection rule — visible writers are those whose write quorum meets
    the read quorum, and the highest ``(counter, writer_id)`` timestamp
    among them wins.
    """

    NODES = 3
    QUORUMS = [frozenset({s}) for s in range(3)]

    def _run_case(self, first_writer, second_writer, quorum_by_writer, read_quorum):
        # Script order: first write, second write, then the read.
        script = [
            quorum_by_writer[first_writer],
            quorum_by_writer[second_writer],
            read_quorum,
        ]
        system = ScriptedSystem(self.NODES, 1, script)
        cluster = Cluster(self.NODES, seed=0)
        registers = {
            w: ProbabilisticRegister(
                system, cluster, writer_id=w, rng=random.Random(w)
            )
            for w in (0, 1)
        }
        reader = ProbabilisticRegister(
            system, cluster, writer_id=9, rng=random.Random(9)
        )
        registers[first_writer].write(("v", first_writer))
        registers[second_writer].write(("v", second_writer))
        return reader.read()

    def test_every_interleaving_resolves_to_the_selection_winner(self):
        cases = 0
        for w0_quorum, w1_quorum, read_quorum in itertools.product(
            self.QUORUMS, repeat=3
        ):
            quorum_by_writer = {0: w0_quorum, 1: w1_quorum}
            visible = [
                w for w in (0, 1) if quorum_by_writer[w] & read_quorum
            ]
            expected = ("v", max(visible)) if visible else None
            for order in ((0, 1), (1, 0)):
                outcome = self._run_case(
                    order[0], order[1], quorum_by_writer, read_quorum
                )
                assert outcome.value == expected, (
                    f"write quorums {sorted(w0_quorum)}/{sorted(w1_quorum)}, "
                    f"read {sorted(read_quorum)}, order {order}: "
                    f"got {outcome.value!r}, expected {expected!r}"
                )
                if visible:
                    assert outcome.timestamp == Timestamp(1, max(visible))
                cases += 1
        # 3 choices for each of the three quorums, times two write orders.
        assert cases == 54

    def test_application_order_never_changes_the_stored_record(self):
        # The node both writers hit must keep the writer-id winner whichever
        # write lands second (Lamport tiebreak, not last-writer-wins).
        shared = frozenset({1})
        for order in ((0, 1), (1, 0)):
            outcome = self._run_case(
                order[0], order[1], {0: shared, 1: shared}, shared
            )
            assert outcome.value == ("v", 1)
            assert outcome.timestamp == Timestamp(1, 1)
