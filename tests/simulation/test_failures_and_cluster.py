"""Tests for failure plans and cluster orchestration."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.failures import CrashEvent, FailurePlan
from repro.simulation.network import Network
from repro.simulation.server import ByzantineReplayBehavior, ByzantineSilentBehavior


class TestFailurePlan:
    def test_none_plan(self):
        plan = FailurePlan.none()
        assert not plan.crashed
        assert not plan.byzantine
        assert plan.faulty_servers == frozenset()

    def test_random_crashes(self):
        plan = FailurePlan.random_crashes(20, 5, rng=random.Random(0))
        assert len(plan.crashed) == 5
        assert plan.crashed <= frozenset(range(20))

    def test_independent_crashes_rate(self):
        rng = random.Random(1)
        sizes = [len(FailurePlan.independent_crashes(100, 0.3, rng=rng).crashed) for _ in range(200)]
        assert sum(sizes) / len(sizes) == pytest.approx(30, rel=0.1)

    def test_random_byzantine_uses_fresh_behaviors(self):
        plan = FailurePlan.random_byzantine(
            10, 3, behavior_factory=ByzantineReplayBehavior, rng=random.Random(2)
        )
        behaviors = list(plan.byzantine.values())
        assert len(behaviors) == 3
        assert len({id(b) for b in behaviors}) == 3  # not shared state

    def test_colluding_forgers_share_the_story(self):
        plan = FailurePlan.colluding_forgers(
            10, 3, "FORGED", Timestamp.forged_maximum(), rng=random.Random(3)
        )
        values = {b.fabricated_value for b in plan.byzantine.values()}
        assert values == {"FORGED"}

    def test_replay_attack_constructor(self):
        plan = FailurePlan.replay_attack(10, 2, rng=random.Random(4))
        assert len(plan.byzantine) == 2

    def test_crashed_and_byzantine_must_be_disjoint(self):
        with pytest.raises(ConfigurationError):
            FailurePlan(crashed=frozenset({1}), byzantine={1: ByzantineSilentBehavior()})

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            FailurePlan.random_crashes(5, 6)
        with pytest.raises(ConfigurationError):
            FailurePlan.independent_crashes(5, 1.5)
        with pytest.raises(ConfigurationError):
            FailurePlan.random_crashes(0, 0)

    def test_with_schedule_sorts_events(self):
        plan = FailurePlan.none().with_schedule(
            [CrashEvent(5.0, 1), CrashEvent(2.0, 0), CrashEvent(7.0, 0, recover=True)]
        )
        assert [event.time for event in plan.schedule] == [2.0, 5.0, 7.0]
        assert "FailurePlan" in plan.describe()


class TestCluster:
    def test_initial_state(self, healthy_cluster):
        assert healthy_cluster.n == 25
        assert healthy_cluster.alive_servers() == set(range(25))
        assert healthy_cluster.correct_servers() == set(range(25))
        assert not healthy_cluster.byzantine_servers

    def test_failure_plan_applied(self):
        plan = FailurePlan(
            crashed=frozenset({0, 1}), byzantine={2: ByzantineSilentBehavior()}
        )
        cluster = Cluster(10, failure_plan=plan)
        assert cluster.crashed_servers == frozenset({0, 1})
        assert cluster.byzantine_servers == frozenset({2})
        assert cluster.correct_servers() == set(range(3, 10))
        assert cluster.failure_plan is plan

    def test_write_and_read_quorum(self, healthy_cluster):
        quorum = frozenset(range(5))
        acks = healthy_cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert set(acks) == set(quorum)
        replies = healthy_cluster.read_quorum(quorum, "x")
        assert set(replies) == set(quorum)
        assert all(reply.value == "v" for reply in replies.values())
        assert healthy_cluster.servers_holding("x", "v") == quorum

    def test_crashed_servers_do_not_reply(self):
        cluster = Cluster(10, failure_plan=FailurePlan(crashed=frozenset({0, 1, 2})))
        quorum = frozenset(range(6))
        acks = cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert set(acks) == {3, 4, 5}
        replies = cluster.read_quorum(quorum, "x")
        assert set(replies) == {3, 4, 5}

    def test_lossy_network_loses_some_messages(self):
        network = Network(drop_probability=0.4, rng=random.Random(9))
        cluster = Cluster(20, network=network, seed=9)
        quorum = frozenset(range(20))
        acks = cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert 0 < len(acks) < 20

    def test_crash_and_recover_api(self, healthy_cluster):
        healthy_cluster.crash(3)
        assert 3 in healthy_cluster.crashed_servers
        healthy_cluster.recover(3)
        assert 3 not in healthy_cluster.crashed_servers

    def test_scheduled_crashes_apply_with_time(self):
        plan = FailurePlan.none().with_schedule(
            [CrashEvent(5.0, 0), CrashEvent(10.0, 0, recover=True)]
        )
        cluster = Cluster(5, failure_plan=plan)
        assert 0 not in cluster.crashed_servers
        cluster.advance_time(6.0)
        assert 0 in cluster.crashed_servers
        cluster.advance_time(6.0)
        assert 0 not in cluster.crashed_servers

    def test_server_id_validation(self, healthy_cluster):
        with pytest.raises(ConfigurationError):
            healthy_cluster.crash(99)
        with pytest.raises(ConfigurationError):
            healthy_cluster.write_quorum({99}, "x", "v", Timestamp(1, 0))
        with pytest.raises(ConfigurationError):
            Cluster(0)

    def test_plan_with_invalid_server_rejected(self):
        plan = FailurePlan(crashed=frozenset({10}))
        with pytest.raises(ConfigurationError):
            Cluster(5, failure_plan=plan)
