"""Tests for failure plans and cluster orchestration."""

from __future__ import annotations

import dataclasses
import pickle
import random

import numpy as np
import pytest

from repro.core.masking import ProbabilisticMaskingSystem
from repro.exceptions import ConfigurationError, SimulationError
from repro.protocol.timestamps import Timestamp
from repro.simulation.batch import BatchTrialEngine
from repro.simulation.cluster import Cluster
from repro.simulation.failures import CrashEvent, FailureModel, FailurePlan
from repro.simulation.network import Network
from repro.simulation.server import (
    ByzantineReplayBehavior,
    ByzantineSilentBehavior,
    GrayBehavior,
)


class TestFailurePlan:
    def test_none_plan(self):
        plan = FailurePlan.none()
        assert not plan.crashed
        assert not plan.byzantine
        assert plan.faulty_servers == frozenset()

    def test_random_crashes(self):
        plan = FailurePlan.random_crashes(20, 5, rng=random.Random(0))
        assert len(plan.crashed) == 5
        assert plan.crashed <= frozenset(range(20))

    def test_independent_crashes_rate(self):
        rng = random.Random(1)
        sizes = [len(FailurePlan.independent_crashes(100, 0.3, rng=rng).crashed) for _ in range(200)]
        assert sum(sizes) / len(sizes) == pytest.approx(30, rel=0.1)

    def test_random_byzantine_uses_fresh_behaviors(self):
        plan = FailurePlan.random_byzantine(
            10, 3, behavior_factory=ByzantineReplayBehavior, rng=random.Random(2)
        )
        behaviors = list(plan.byzantine.values())
        assert len(behaviors) == 3
        assert len({id(b) for b in behaviors}) == 3  # not shared state

    def test_colluding_forgers_share_the_story(self):
        plan = FailurePlan.colluding_forgers(
            10, 3, "FORGED", Timestamp.forged_maximum(), rng=random.Random(3)
        )
        values = {b.fabricated_value for b in plan.byzantine.values()}
        assert values == {"FORGED"}

    def test_replay_attack_constructor(self):
        plan = FailurePlan.replay_attack(10, 2, rng=random.Random(4))
        assert len(plan.byzantine) == 2

    def test_crashed_and_byzantine_must_be_disjoint(self):
        with pytest.raises(ConfigurationError):
            FailurePlan(crashed=frozenset({1}), byzantine={1: ByzantineSilentBehavior()})

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            FailurePlan.random_crashes(5, 6)
        with pytest.raises(ConfigurationError):
            FailurePlan.independent_crashes(5, 1.5)
        with pytest.raises(ConfigurationError):
            FailurePlan.random_crashes(0, 0)

    def test_with_schedule_sorts_events(self):
        plan = FailurePlan.none().with_schedule(
            [CrashEvent(5.0, 1), CrashEvent(2.0, 0), CrashEvent(7.0, 0, recover=True)]
        )
        assert [event.time for event in plan.schedule] == [2.0, 5.0, 7.0]
        assert "FailurePlan" in plan.describe()


class TestFailurePlanImmutability:
    """Regression: plans are shared across trials, so they must be frozen."""

    def test_fields_cannot_be_reassigned(self):
        plan = FailurePlan.random_crashes(10, 3, rng=random.Random(0))
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.crashed = frozenset()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.shuffle_delivery = True

    def test_behavior_map_has_no_mutation_surface(self):
        plan = FailurePlan.replay_attack(10, 2, rng=random.Random(1))
        with pytest.raises(TypeError):
            plan.byzantine[0] = ByzantineSilentBehavior()
        with pytest.raises(AttributeError):
            plan.byzantine.clear()

    def test_collections_are_coerced_immutable(self):
        plan = FailurePlan(crashed={1, 2}, schedule=[CrashEvent(1.0, 0)])
        assert isinstance(plan.crashed, frozenset)
        assert isinstance(plan.schedule, tuple)

    def test_plans_pickle_across_process_boundaries(self):
        plan = FailurePlan.colluding_forgers(
            10, 2, "FORGED", Timestamp.forged_maximum(), rng=random.Random(2)
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.crashed == plan.crashed
        assert set(clone.byzantine) == set(plan.byzantine)
        assert clone.byzantine_servers == plan.byzantine_servers

    def test_shared_replay_plan_does_not_leak_state_across_trials(self):
        # Regression: one plan, many trials.  The replay behaviour latches the
        # first value it sees; with a shared mutable behaviour, trial 1's
        # history poisoned trial 2.  for_trial() must isolate them.
        plan = FailurePlan(byzantine={0: ByzantineReplayBehavior()})

        def trial(first_value):
            cluster = Cluster(4, failure_plan=plan)
            quorum = frozenset(range(4))
            cluster.write_quorum(quorum, "x", first_value, Timestamp(1, 0))
            cluster.write_quorum(quorum, "x", "newer", Timestamp(2, 0))
            return cluster.read_quorum(quorum, "x")[0].value

        assert trial("first-a") == "first-a"
        # A fresh trial's replay server latches the *new* first write — not
        # the previous trial's.
        assert trial("first-b") == "first-b"
        # And the shared plan object itself retains no trial state.
        assert plan.byzantine[0]._first_seen == {}

    def test_shared_gray_plan_draws_identically_per_trial(self):
        plan = FailurePlan.gray_nodes(6, 3, 0.5, rng=random.Random(3))

        def outcome():
            cluster = Cluster(6, failure_plan=plan)
            quorum = frozenset(range(6))
            acks = cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
            return frozenset(acks)

        # Same plan, fresh per-trial behaviour clones: identical draws, and
        # the plan's own behaviours never advance their rng.
        assert outcome() == outcome()


class TestAdversaryFleetPlans:
    def test_gray_nodes_constructor(self):
        plan = FailurePlan.gray_nodes(10, 3, 0.25, rng=random.Random(4))
        assert len(plan.byzantine) == 3
        assert all(isinstance(b, GrayBehavior) for b in plan.byzantine.values())
        # Gray servers are degraded but not Byzantine.
        assert plan.byzantine_servers == frozenset()
        assert len(plan.faulty_servers) == 3

    def test_gray_drop_probability_validated(self):
        with pytest.raises(SimulationError):
            GrayBehavior(1.5)

    def test_targeted_partition_lowers_to_crashes(self):
        plan = FailurePlan.targeted_partition(10, [7, 2, 2])
        assert plan.crashed == frozenset({2, 7})
        assert not plan.byzantine

    def test_targeted_partition_validates_targets(self):
        with pytest.raises(ConfigurationError):
            FailurePlan.targeted_partition(5, [5])

    def test_shuffle_delivery_changes_order_not_outcome(self):
        shuffled = Cluster(8, failure_plan=FailurePlan(shuffle_delivery=True), seed=11)
        plain = Cluster(8, seed=11)
        quorum = tuple(range(8))
        for cluster in (shuffled, plain):
            cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert shuffled._delivery_order(quorum) != list(quorum)
        assert plain._delivery_order(quorum) == list(quorum)
        assert shuffled.read_quorum(quorum, "x").keys() == plain.read_quorum(
            quorum, "x"
        ).keys()
        assert "shuffled" in FailurePlan(shuffle_delivery=True).describe()


class TestAdversaryFleetModels:
    def test_fleet_kinds_and_flags(self):
        clique = FailureModel.timestamp_forging_clique(3, "FORGED", Timestamp(1, 7))
        assert clique.byzantine_count == 3
        assert clique.forges_values
        gray = FailureModel.gray_nodes(3, 0.3)
        assert gray.byzantine_count == 0
        assert not gray.forges_values
        assert FailureModel.message_reordering().byzantine_count == 0
        partition = FailureModel.targeted_partition([3, 1])
        assert partition.targets == (1, 3)
        assert partition.byzantine_count == 0

    def test_fleet_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel.gray_nodes(2, 1.5)
        with pytest.raises(ConfigurationError):
            FailureModel.targeted_partition([-1])
        with pytest.raises(ConfigurationError):
            FailureModel.gray_nodes(-1, 0.5)

    def test_fleet_describe(self):
        assert "targets=[0, 1]" in FailureModel.targeted_partition([0, 1]).describe()
        assert "drop_p=0.3" in FailureModel.gray_nodes(2, 0.3).describe()
        assert "message_reordering" in FailureModel.message_reordering().describe()

    def test_sampled_plans_match_their_model(self):
        rng = random.Random(5)
        partition = FailureModel.targeted_partition([0, 1]).sample_plan_for(10, rng)
        assert partition.crashed == frozenset({0, 1})
        reorder = FailureModel.message_reordering().sample_plan_for(10, rng)
        assert reorder.shuffle_delivery and not reorder.faulty_servers
        clique = FailureModel.timestamp_forging_clique(
            2, "FORGED", Timestamp(1, 7)
        ).sample_plan_for(10, rng)
        assert len(clique.byzantine_servers) == 2
        assert {b.fabricated_timestamp for b in clique.byzantine.values()} == {
            Timestamp(1, 7)
        }
        gray = FailureModel.gray_nodes(3, 0.4).sample_plan_for(10, rng)
        assert all(b.drop_p == 0.4 for b in gray.byzantine.values())

    def test_fleet_batch_masks(self):
        generator = np.random.default_rng(6)
        partition = FailureModel.targeted_partition([0, 4]).sample_masks(
            8, 5, generator
        )
        assert partition.crashed[:, [0, 4]].all()
        assert not partition.crashed[:, [1, 2, 3, 5, 6, 7]].any()
        reorder = FailureModel.message_reordering().sample_masks(8, 5, generator)
        assert not (reorder.crashed.any() or reorder.byzantine.any())
        clique = FailureModel.timestamp_forging_clique(
            3, "FORGED", Timestamp(1, 7)
        ).sample_masks(8, 200, generator)
        assert (clique.forgers.sum(axis=1) == 3).all()
        assert clique.fabricated_timestamp == Timestamp(1, 7)
        # Gray folds into the crash mask: at most `count` per trial, with the
        # effective probability 1 - (1-p)^2 per chosen server.
        gray = FailureModel.gray_nodes(4, 0.5).sample_masks(8, 4000, generator)
        assert (gray.crashed.sum(axis=1) <= 4).all()
        assert gray.crashed.sum() / (4 * 4000) == pytest.approx(0.75, abs=0.05)

    def test_batch_gray_fenced_off_multi_operation_kernels(self):
        system = ProbabilisticMaskingSystem(16, 8, 1)
        engine = BatchTrialEngine(
            system, failure_model=FailureModel.gray_nodes(2, 0.3), writers=2
        )
        with pytest.raises(ConfigurationError, match="sequential"):
            engine.estimate_read_consistency(100)


class TestCluster:
    def test_initial_state(self, healthy_cluster):
        assert healthy_cluster.n == 25
        assert healthy_cluster.alive_servers() == set(range(25))
        assert healthy_cluster.correct_servers() == set(range(25))
        assert not healthy_cluster.byzantine_servers

    def test_failure_plan_applied(self):
        plan = FailurePlan(
            crashed=frozenset({0, 1}), byzantine={2: ByzantineSilentBehavior()}
        )
        cluster = Cluster(10, failure_plan=plan)
        assert cluster.crashed_servers == frozenset({0, 1})
        assert cluster.byzantine_servers == frozenset({2})
        assert cluster.correct_servers() == set(range(3, 10))
        assert cluster.failure_plan is plan

    def test_write_and_read_quorum(self, healthy_cluster):
        quorum = frozenset(range(5))
        acks = healthy_cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert set(acks) == set(quorum)
        replies = healthy_cluster.read_quorum(quorum, "x")
        assert set(replies) == set(quorum)
        assert all(reply.value == "v" for reply in replies.values())
        assert healthy_cluster.servers_holding("x", "v") == quorum

    def test_crashed_servers_do_not_reply(self):
        cluster = Cluster(10, failure_plan=FailurePlan(crashed=frozenset({0, 1, 2})))
        quorum = frozenset(range(6))
        acks = cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert set(acks) == {3, 4, 5}
        replies = cluster.read_quorum(quorum, "x")
        assert set(replies) == {3, 4, 5}

    def test_lossy_network_loses_some_messages(self):
        network = Network(drop_probability=0.4, rng=random.Random(9))
        cluster = Cluster(20, network=network, seed=9)
        quorum = frozenset(range(20))
        acks = cluster.write_quorum(quorum, "x", "v", Timestamp(1, 0))
        assert 0 < len(acks) < 20

    def test_crash_and_recover_api(self, healthy_cluster):
        healthy_cluster.crash(3)
        assert 3 in healthy_cluster.crashed_servers
        healthy_cluster.recover(3)
        assert 3 not in healthy_cluster.crashed_servers

    def test_scheduled_crashes_apply_with_time(self):
        plan = FailurePlan.none().with_schedule(
            [CrashEvent(5.0, 0), CrashEvent(10.0, 0, recover=True)]
        )
        cluster = Cluster(5, failure_plan=plan)
        assert 0 not in cluster.crashed_servers
        cluster.advance_time(6.0)
        assert 0 in cluster.crashed_servers
        cluster.advance_time(6.0)
        assert 0 not in cluster.crashed_servers

    def test_server_id_validation(self, healthy_cluster):
        with pytest.raises(ConfigurationError):
            healthy_cluster.crash(99)
        with pytest.raises(ConfigurationError):
            healthy_cluster.write_quorum({99}, "x", "v", Timestamp(1, 0))
        with pytest.raises(ConfigurationError):
            Cluster(0)

    def test_plan_with_invalid_server_rejected(self):
        plan = FailurePlan(crashed=frozenset({10}))
        with pytest.raises(ConfigurationError):
            Cluster(5, failure_plan=plan)
