"""Tests for the declarative ScenarioSpec layer.

The spec is the single experiment description both engines consume, so the
things pinned down here are (a) validation and auto-resolution of the
register kind from the system's declared read semantics, (b) the sequential
lowering to the matching register class, and (c) the estimator dispatch —
spec in, identical experiment out, on either engine.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import ProbabilisticDisseminationSystem
from repro.core.epsilon_intersecting import UniformEpsilonIntersectingSystem
from repro.core.masking import ProbabilisticMaskingSystem
from repro.core.probabilistic import ReadSemantics
from repro.exceptions import ConfigurationError
from repro.protocol.dissemination_variable import DisseminationRegister
from repro.protocol.masking_variable import MaskingRegister
from repro.protocol.variable import ProbabilisticRegister
from repro.simulation.batch import BatchTrialEngine
from repro.simulation.cluster import Cluster
from repro.simulation.failures import FailureModel
from repro.simulation.monte_carlo import (
    estimate_read_consistency,
    estimate_staleness_distribution,
)
from repro.simulation.scenario import ScenarioSpec, WorkloadSpec

PLAIN = UniformEpsilonIntersectingSystem(25, 8)
DISSEMINATION = ProbabilisticDisseminationSystem(25, 8, 5)
MASKING = ProbabilisticMaskingSystem(25, 10, 5)


class TestReadSemantics:
    def test_system_declarations(self):
        assert PLAIN.read_semantics() == ReadSemantics()
        assert DISSEMINATION.read_semantics() == ReadSemantics(self_verifying=True)
        assert MASKING.read_semantics() == ReadSemantics(threshold=MASKING.read_threshold)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReadSemantics(threshold=0)
        with pytest.raises(ConfigurationError):
            ReadSemantics(threshold=2, self_verifying=True)

    def test_describe(self):
        assert "benign" in ReadSemantics().describe()
        assert "self-verifying" in ReadSemantics(self_verifying=True).describe()
        assert "k=3" in ReadSemantics(threshold=3).describe()


class TestScenarioResolution:
    def test_auto_resolution_follows_the_system(self):
        assert ScenarioSpec(system=PLAIN).resolved_register_kind() == "plain"
        assert (
            ScenarioSpec(system=DISSEMINATION).resolved_register_kind()
            == "dissemination"
        )
        assert ScenarioSpec(system=MASKING).resolved_register_kind() == "masking"

    def test_read_semantics_follow_the_resolved_kind(self):
        assert ScenarioSpec(system=MASKING).read_semantics().threshold == 2
        assert ScenarioSpec(system=DISSEMINATION).read_semantics().self_verifying
        # Forcing a plain register overrides the system's own semantics.
        forced = ScenarioSpec(system=MASKING, register_kind="plain")
        assert forced.read_semantics() == ReadSemantics()

    def test_register_factory_builds_the_matching_register(self):
        cluster = Cluster(25)
        rng = random.Random(0)
        plain = ScenarioSpec(system=PLAIN).register_factory()(cluster, rng)
        assert type(plain) is ProbabilisticRegister
        masking = ScenarioSpec(system=MASKING).register_factory()(Cluster(25), rng)
        assert isinstance(masking, MaskingRegister)
        dissemination = ScenarioSpec(system=DISSEMINATION).register_factory()(
            Cluster(25), rng
        )
        assert isinstance(dissemination, DisseminationRegister)

    def test_write_back_kind_lowers_to_the_read_repair_oracle(self):
        from repro.protocol.write_back import WriteBackRegister

        spec = ScenarioSpec(system=PLAIN, register_kind="write-back")
        assert spec.resolved_register_kind() == "write-back"
        # The repair read claims no b tolerance: plain semantics.
        assert spec.read_semantics() == ReadSemantics()
        register = spec.register_factory()(Cluster(25), random.Random(0))
        assert isinstance(register, WriteBackRegister)
        # Driven declaratively, a settled read repairs the lagging quorum
        # members it contacted: coverage of the latest value grows.
        register.write("v1")
        before = register.replicas_holding_latest()
        outcome = register.read()
        assert outcome.value == "v1"
        assert register.write_backs_performed == 1
        assert register.replicas_holding_latest() >= before

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(system="not a system")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(system=PLAIN, failure_model=lambda rng: None)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(system=PLAIN, register_kind="warp")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(system=PLAIN, register_kind="masking")  # no threshold
        with pytest.raises(ConfigurationError):
            WorkloadSpec(writes=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(gossip_rounds_between_writes=-1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(gossip_fanout=0)

    def test_failure_models_beyond_declared_tolerance_are_rejected(self):
        # A model injecting more Byzantine servers than the protocol's
        # declared b voids Theorems 4.2/5.2 and used to silently produce
        # all-stale runs; it is now a loud configuration error.
        with pytest.raises(ConfigurationError, match="only tolerates b=5"):
            ScenarioSpec(system=MASKING, failure_model=FailureModel.random_byzantine(12))
        with pytest.raises(ConfigurationError, match="only tolerates b=5"):
            ScenarioSpec(
                system=DISSEMINATION, failure_model=FailureModel.replay_attack(6)
            )
        # Injecting exactly b is the theorem's regime.
        ScenarioSpec(system=MASKING, failure_model=FailureModel.random_byzantine(5))
        # Crash-only models make no Byzantine claim, however severe.
        ScenarioSpec(system=MASKING, failure_model=FailureModel.independent_crashes(0.9))
        # Forcing a plain register models a reader that ignores the filter —
        # the documented escape hatch — and plain systems declare no
        # tolerance at all.
        ScenarioSpec(
            system=MASKING,
            register_kind="plain",
            failure_model=FailureModel.random_byzantine(12),
        )
        ScenarioSpec(system=PLAIN, failure_model=FailureModel.random_byzantine(12))

    def test_declared_tolerances_surface_in_read_semantics(self):
        assert ScenarioSpec(system=MASKING).read_semantics().byzantine_tolerance == 5
        assert (
            ScenarioSpec(system=DISSEMINATION).read_semantics().byzantine_tolerance == 5
        )
        assert ScenarioSpec(system=PLAIN).read_semantics().byzantine_tolerance is None
        # The tolerance is informational for equality (compare=False), so the
        # PR 2 declarations still compare equal without it.
        assert ReadSemantics(self_verifying=True, byzantine_tolerance=5) == ReadSemantics(
            self_verifying=True
        )
        with pytest.raises(ConfigurationError):
            ReadSemantics(byzantine_tolerance=-1)

    def test_describe_names_the_parts(self):
        spec = ScenarioSpec(
            system=MASKING, failure_model=FailureModel.random_byzantine(3)
        )
        text = spec.describe()
        assert "register=masking" in text
        assert "random_byzantine" in text


class TestEstimatorDispatch:
    def test_spec_carries_n_and_rejects_mismatches(self):
        spec = ScenarioSpec(system=PLAIN)
        report = estimate_read_consistency(spec, trials=50, seed=1)
        assert report.trials == 50
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(spec, n=26, trials=50)

    def test_spec_rejects_extra_plan_factory(self):
        spec = ScenarioSpec(system=PLAIN)
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(
                spec, plan_factory=FailureModel.none(), trials=10
            )

    def test_legacy_factories_require_n(self):
        factory = lambda cluster, rng: ProbabilisticRegister(PLAIN, cluster, rng=rng)
        with pytest.raises(ConfigurationError):
            estimate_read_consistency(factory, trials=10)
        report = estimate_read_consistency(factory, n=25, trials=10)
        assert report.trials == 10

    def test_bare_system_with_arbitrary_plan_factory_stays_sequential(self):
        # A plan *factory* (not a FailureModel) cannot be promoted to a spec,
        # but the bare system must still lower to a register on the oracle.
        from repro.simulation.failures import FailurePlan

        report = estimate_read_consistency(
            PLAIN,
            plan_factory=lambda rng: FailurePlan.independent_crashes(25, 0.1, rng=rng),
            n=25,
            trials=40,
            seed=6,
        )
        assert report.trials == 40
        staleness = estimate_staleness_distribution(
            PLAIN,
            plan_factory=lambda rng: FailurePlan.none(),
            n=25,
            writes=2,
            trials=20,
            seed=6,
        )
        assert staleness.trials == 20

    def test_bare_masking_system_gets_the_threshold_read_on_both_engines(self):
        # Promotion to an auto spec means a masking system drives the
        # Section 5 protocol even when passed bare, on either engine.
        model = FailureModel.random_byzantine(5)
        sequential = estimate_read_consistency(
            MASKING, plan_factory=model, trials=400, seed=3
        )
        batch = estimate_read_consistency(
            MASKING, plan_factory=model, trials=400, seed=3, engine="batch"
        )
        # With 5 of 25 servers silent, a single-vote read almost always still
        # finds one storer; the k=2 threshold visibly fails more often.
        plain = estimate_read_consistency(
            ScenarioSpec(system=MASKING, register_kind="plain", failure_model=model),
            trials=400,
            seed=3,
            engine="batch",
        )
        assert sequential.fresh_fraction < 0.96 < plain.fresh_fraction
        assert batch.fresh_fraction < 0.96

    def test_staleness_defaults_come_from_the_workload(self):
        spec = ScenarioSpec(
            system=PLAIN,
            workload=WorkloadSpec(writes=3, gossip_rounds_between_writes=2),
        )
        report = estimate_staleness_distribution(spec, trials=200, seed=2, engine="batch")
        assert max(report.versions_behind) <= 3
        # Explicit arguments override the workload.
        report = estimate_staleness_distribution(
            spec, writes=2, gossip_rounds_between_writes=0, trials=200, seed=2,
            engine="batch",
        )
        assert max(report.versions_behind) <= 2

    def test_batch_engine_from_spec_is_reproducible(self):
        spec = ScenarioSpec(
            system=MASKING, failure_model=FailureModel.random_byzantine(5)
        )
        first = BatchTrialEngine.from_spec(spec, seed=11).estimate_read_consistency(2_000)
        second = BatchTrialEngine.from_spec(spec, seed=11).estimate_read_consistency(2_000)
        assert (first.fresh, first.stale, first.empty, first.fabricated) == (
            second.fresh,
            second.stale,
            second.empty,
            second.fabricated,
        )
        assert BatchTrialEngine.from_spec(spec).semantics.threshold == 2

    def test_spec_written_value_is_used_by_the_sequential_engine(self):
        spec = ScenarioSpec(system=PLAIN, workload=WorkloadSpec(written_value="payload"))
        report = estimate_read_consistency(spec, trials=20, seed=4)
        assert report.fresh == 20  # no failures: every read sees "payload"
