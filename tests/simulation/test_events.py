"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventScheduler, Scheduler
from repro.simulation.explore import ControlledScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]
        assert scheduler.now == 3.0
        assert scheduler.processed_events == 3

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("first"))
        scheduler.schedule(1.0, lambda: fired.append("second"))
        scheduler.run()
        assert fired == ["first", "second"]

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append(scheduler.now))
        scheduler.run()
        assert fired == [5.0]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(-0.5, lambda: None)

    def test_cancellation(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append("cancelled"))
        scheduler.schedule(2.0, lambda: fired.append("kept"))
        assert len(scheduler) == 2
        handle.cancel()
        assert handle.cancelled
        assert len(scheduler) == 1
        scheduler.run()
        assert fired == ["kept"]

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                scheduler.schedule(1.0, lambda: chain(depth + 1))

        scheduler.schedule(1.0, lambda: chain(0))
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == 4.0


class TestRunUntil:
    def test_only_events_up_to_deadline_fire(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        count = scheduler.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert scheduler.now == 2.0
        scheduler.run_until(10.0)
        assert fired == [1, 5]

    def test_clock_advances_even_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(7.5)
        assert scheduler.now == 7.5

    def test_cannot_run_backwards(self):
        scheduler = EventScheduler()
        scheduler.run_until(3.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0)

    def test_runaway_loop_detected(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule(0.0, reschedule)

        scheduler.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0, max_events=100)

    def test_run_with_max_events(self):
        scheduler = EventScheduler()
        for i in range(10):
            scheduler.schedule(i, lambda: None)
        ran = scheduler.run(max_events=4)
        assert ran == 4
        assert len(scheduler) == 6

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False

    def test_run_until_processes_exactly_max_events_without_raising(self):
        # Regression: the guard used to trip only after processing
        # max_events + 1 events; hitting the budget exactly must succeed.
        scheduler = EventScheduler()
        fired = []
        for i in range(5):
            scheduler.schedule(float(i), lambda i=i: fired.append(i))
        assert scheduler.run_until(10.0, max_events=5) == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_raises_before_exceeding_max_events(self):
        scheduler = EventScheduler()
        fired = []
        for i in range(5):
            scheduler.schedule(float(i), lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            scheduler.run_until(10.0, max_events=4)
        # The budget is a hard cap: event 5 was never processed.
        assert fired == [0, 1, 2, 3]


@pytest.mark.parametrize("make_scheduler", [EventScheduler, ControlledScheduler])
class TestNonFiniteTimesRejected:
    """Regression: NaN/inf delays used to slip into the heap and silently
    corrupt its ordering (NaN compares false against everything)."""

    @pytest.mark.parametrize("delay", [math.nan, math.inf, -math.inf])
    def test_schedule_rejects_non_finite_delay(self, make_scheduler, delay):
        scheduler = make_scheduler()
        with pytest.raises(SimulationError, match="finite"):
            scheduler.schedule(delay, lambda: None)
        assert len(scheduler) == 0

    @pytest.mark.parametrize("time", [math.nan, math.inf, -math.inf])
    def test_schedule_at_rejects_non_finite_time(self, make_scheduler, time):
        scheduler = make_scheduler()
        with pytest.raises(SimulationError, match="finite"):
            scheduler.schedule_at(time, lambda: None)
        assert len(scheduler) == 0


class TestSchedulerInterface:
    """Both implementations of the Scheduler interface behave identically
    when the controlled scheduler is left on its default policy."""

    def test_both_implement_the_shared_interface(self):
        assert issubclass(EventScheduler, Scheduler)
        assert issubclass(ControlledScheduler, Scheduler)

    @staticmethod
    def _load(scheduler, fired):
        # A mix of ties, out-of-order insertion and event-scheduled events.
        scheduler.schedule(2.0, lambda: fired.append(("b", scheduler.now)))
        scheduler.schedule(1.0, lambda: fired.append(("a1", scheduler.now)))
        scheduler.schedule(1.0, lambda: fired.append(("a2", scheduler.now)))

        def cascade():
            fired.append(("c", scheduler.now))
            scheduler.schedule(0.5, lambda: fired.append(("d", scheduler.now)))

        scheduler.schedule(3.0, cascade)

    def test_default_order_matches_event_scheduler(self):
        runs = []
        for make_scheduler in (EventScheduler, ControlledScheduler):
            scheduler = make_scheduler()
            fired = []
            self._load(scheduler, fired)
            ran = scheduler.run()
            runs.append((fired, ran, scheduler.now, scheduler.processed_events))
        assert runs[0] == runs[1]
        assert runs[0][0] == [("a1", 1.0), ("a2", 1.0), ("b", 2.0), ("c", 3.0), ("d", 3.5)]

    @pytest.mark.parametrize("make_scheduler", [EventScheduler, ControlledScheduler])
    def test_cancellation_during_step_is_honoured(self, make_scheduler):
        # An event that cancels a later pending event mid-step: the victim
        # must never fire, on either implementation.
        scheduler = make_scheduler()
        fired = []
        victim = scheduler.schedule(2.0, lambda: fired.append("victim"))
        scheduler.schedule(1.0, lambda: victim.cancel())
        scheduler.schedule(3.0, lambda: fired.append("after"))
        scheduler.run()
        assert fired == ["after"]
        assert victim.cancelled

    def test_peek_skips_lazily_cancelled_heap_entries(self):
        # EventScheduler cancels lazily: the heap entry stays until popped.
        # _peek must discard stale entries rather than report them upcoming,
        # or run_until would count phantom events against max_events.
        scheduler = EventScheduler()
        handles = [scheduler.schedule(float(i), lambda: None) for i in range(1, 4)]
        handles[0].cancel()
        handles[1].cancel()
        assert len(scheduler) == 1
        # Only the one live event is processed, well within the budget.
        assert scheduler.run_until(5.0, max_events=1) == 1
        assert scheduler.processed_events == 1

    @pytest.mark.parametrize("make_scheduler", [EventScheduler, ControlledScheduler])
    def test_same_seedless_schedule_is_deterministic(self, make_scheduler):
        orders = []
        for _ in range(2):
            scheduler = make_scheduler()
            fired = []
            self._load(scheduler, fired)
            scheduler.run()
            orders.append(fired)
        assert orders[0] == orders[1]
