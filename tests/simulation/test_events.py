"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]
        assert scheduler.now == 3.0
        assert scheduler.processed_events == 3

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("first"))
        scheduler.schedule(1.0, lambda: fired.append("second"))
        scheduler.run()
        assert fired == ["first", "second"]

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append(scheduler.now))
        scheduler.run()
        assert fired == [5.0]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(-0.5, lambda: None)

    def test_cancellation(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append("cancelled"))
        scheduler.schedule(2.0, lambda: fired.append("kept"))
        assert len(scheduler) == 2
        handle.cancel()
        assert handle.cancelled
        assert len(scheduler) == 1
        scheduler.run()
        assert fired == ["kept"]

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                scheduler.schedule(1.0, lambda: chain(depth + 1))

        scheduler.schedule(1.0, lambda: chain(0))
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == 4.0


class TestRunUntil:
    def test_only_events_up_to_deadline_fire(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        count = scheduler.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert scheduler.now == 2.0
        scheduler.run_until(10.0)
        assert fired == [1, 5]

    def test_clock_advances_even_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(7.5)
        assert scheduler.now == 7.5

    def test_cannot_run_backwards(self):
        scheduler = EventScheduler()
        scheduler.run_until(3.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0)

    def test_runaway_loop_detected(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule(0.0, reschedule)

        scheduler.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0, max_events=100)

    def test_run_with_max_events(self):
        scheduler = EventScheduler()
        for i in range(10):
            scheduler.schedule(i, lambda: None)
        ran = scheduler.run(max_events=4)
        assert ran == 4
        assert len(scheduler) == 6

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False
