"""Property tests for both anti-entropy implementations (Section 1.1).

The claim the service layer leans on — gossip only ever moves replicas
*toward* the newest value, never away from it — is pinned down here as
three properties that must hold for the object engine
(:class:`~repro.simulation.diffusion.DiffusionEngine`) and the
vectorised batch kernel
(:func:`~repro.simulation.diffusion.gossip_rounds_batch`) alike:

* the fresh-server fraction is monotone non-decreasing over rounds
  under benign faults (crashes only);
* a Byzantine payload is never adopted by a correct server when
  verification rejects it (object engine) / when its holder is
  ineligible (batch kernel);
* ``fanout=0`` is the identity.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.signatures import SignatureScheme
from repro.protocol.timestamps import Timestamp
from repro.simulation.cluster import Cluster
from repro.simulation.diffusion import DiffusionEngine, gossip_rounds_batch
from repro.simulation.failures import FailurePlan
from repro.simulation.server import StoredValue

#: A version strictly above anything an eligible server legitimately holds.
FORGED_VERSION = 999


def crashed_plan(n: int, crash_fraction: float, rng: random.Random) -> FailurePlan:
    """Crash a random subset of servers, always sparing server 0 (the seeder)."""
    crashed = frozenset(
        server for server in range(1, n) if rng.random() < crash_fraction
    )
    return FailurePlan(crashed=crashed)


class TestEngineProperties:
    @given(
        n=st.integers(min_value=8, max_value=30),
        fanout=st.integers(min_value=1, max_value=4),
        crash_fraction=st.floats(min_value=0.0, max_value=0.4),
        rounds=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_fresh_fraction_monotone_under_benign_faults(
        self, n, fanout, crash_fraction, rounds, seed
    ):
        rng = random.Random(seed)
        cluster = Cluster(n, failure_plan=crashed_plan(n, crash_fraction, rng), seed=seed)
        cluster.server(0).handle_write("x", "v", Timestamp(1, 0))
        engine = DiffusionEngine(cluster, fanout=fanout, rng=random.Random(seed + 1))
        profile = engine.freshness_profile("x", "v", rounds=rounds)
        assert profile[0] > 0.0  # the seeder is correct by construction
        assert all(a <= b + 1e-12 for a, b in zip(profile, profile[1:]))

    @given(
        n=st.integers(min_value=8, max_value=24),
        poisoned=st.integers(min_value=1, max_value=3),
        fanout=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_rejected_payloads_never_adopted(self, n, poisoned, fanout, seed):
        # Plant an unsigned forged record — carrying the maximal timestamp,
        # the strongest possible lure — in a few servers' storage; with a
        # verifier installed, their pushes are discarded and the forgery
        # never reaches anyone else, while the honest signed value spreads.
        scheme = SignatureScheme(b"writer")
        cluster = Cluster(n, seed=seed)
        honest_ts = Timestamp(1, 0)
        cluster.server(poisoned).handle_write(
            "x", "honest", honest_ts, signature=scheme.sign("x", "honest", honest_ts)
        )
        for server in range(poisoned):
            cluster.server(server).storage["x"] = StoredValue(
                value="FORGED", timestamp=Timestamp.forged_maximum(), signature=None
            )

        def verify(variable, stored):
            return scheme.verify(
                variable, stored.value, stored.timestamp, stored.signature
            )

        engine = DiffusionEngine(
            cluster, fanout=fanout, verify=verify, rng=random.Random(seed)
        )
        engine.run_rounds(8, ["x"])
        for server in range(poisoned, n):
            stored = cluster.server(server).storage.get("x")
            assert stored is None or stored.value == "honest"

    @given(
        n=st.integers(min_value=3, max_value=20),
        rounds=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_fanout_zero_is_the_identity(self, n, rounds, seed):
        cluster = Cluster(n, seed=seed)
        cluster.server(0).handle_write("x", "v", Timestamp(1, 0))
        engine = DiffusionEngine(cluster, fanout=0, rng=random.Random(seed))
        before = {
            server: cluster.server(server).storage.get("x") for server in range(n)
        }
        assert engine.run_rounds(rounds, ["x"]) == 0
        assert engine.messages_pushed == 0
        after = {
            server: cluster.server(server).storage.get("x") for server in range(n)
        }
        assert after == before


def random_state(n, trials, seed, forged_servers=0):
    """A random batch-gossip state: versions, eligibility and generator.

    The last ``forged_servers`` servers are ineligible and hold
    :data:`FORGED_VERSION` — the batch analogue of a Byzantine replica
    whose pushes must never land.
    """
    generator = np.random.default_rng(seed)
    versions = generator.integers(-1, 6, size=(trials, n))
    eligible = generator.random(size=(trials, n)) < 0.8
    if forged_servers:
        versions[:, n - forged_servers:] = FORGED_VERSION
        eligible[:, n - forged_servers:] = False
    return versions, eligible, generator


class TestBatchKernelProperties:
    @given(
        trials=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=2, max_value=16),
        fanout=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_fresh_fraction_monotone_under_benign_faults(
        self, trials, n, fanout, rounds, seed
    ):
        fanout = min(fanout, n - 1)
        versions, eligible, generator = random_state(n, trials, seed)
        target = np.where(eligible, versions, -1).max(axis=1)
        current = versions

        def fresh_fraction(state):
            holding = ((state >= target[:, None]) & eligible).sum(axis=1)
            population = np.maximum(eligible.sum(axis=1), 1)
            return holding / population

        previous = fresh_fraction(current)
        for _ in range(rounds):
            current = gossip_rounds_batch(current, eligible, fanout, 1, generator)
            fraction = fresh_fraction(current)
            assert np.all(fraction >= previous - 1e-12)
            previous = fraction
        # Ineligible servers neither pushed nor received.
        assert np.array_equal(current[~eligible], versions[~eligible])

    @given(
        trials=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=3, max_value=16),
        forged=st.integers(min_value=1, max_value=2),
        fanout=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_ineligible_forgeries_never_adopted(
        self, trials, n, forged, fanout, rounds, seed
    ):
        fanout = min(fanout, n - 1)
        versions, eligible, generator = random_state(
            n, trials, seed, forged_servers=forged
        )
        result = gossip_rounds_batch(versions, eligible, fanout, rounds, generator)
        assert np.all(result[eligible] < FORGED_VERSION)
        assert np.array_equal(result[~eligible], versions[~eligible])

    @given(
        trials=st.integers(min_value=0, max_value=8),
        n=st.integers(min_value=2, max_value=16),
        rounds=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_fanout_zero_is_the_identity(self, trials, n, rounds, seed):
        versions, eligible, generator = random_state(n, trials, seed)
        result = gossip_rounds_batch(versions, eligible, 0, rounds, generator)
        assert result is not versions  # a copy, the input is never mutated
        assert np.array_equal(result, versions)
