"""Tests for the exhaustive small-config interleaving explorer.

The explorer's contract has three parts, each pinned here: (1) the state
space of the pinned configurations is *stable* — a refactor that silently
changes what gets enumerated shows up as a count drift; (2) the shipped
selection rule is safe on every schedule of every grid cell; (3) seeded
mutant rules are *caught*, with a minimised, replayable counterexample —
the proof that the exploration actually has teeth.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.protocol.selection import (
    enumerate_credible_values,
    select_credible_value,
    tiebreak_key,
)
from repro.simulation.explore import (
    ExploreSpec,
    ReadOp,
    WriteOp,
    explore,
    explore_grid,
    run_schedule,
)

#: The ISSUE's pinned cell: 4 servers, write+read, one timestamp forger,
#: masking read with threshold 2.
PINNED_FORGER_SPEC = ExploreSpec(
    n=4,
    quorum_size=3,
    register_kind="masking",
    threshold=2,
    ops=(WriteOp(0, "a"), ReadOp()),
    forgers=1,
)

#: Two sequential writes then a read, benign plain register — the config on
#: which an inverted-timestamp mutant must return the stale first write.
TWO_WRITE_SPEC = ExploreSpec(
    n=4,
    quorum_size=3,
    register_kind="plain",
    threshold=1,
    ops=(WriteOp(0, "a"), WriteOp(0, "b"), ReadOp()),
)


# -- seeded mutants ------------------------------------------------------------


def lowest_timestamp_wins(replies, threshold=1):
    """Mutant: rule 2's comparison inverted — the *stalest* candidate wins."""
    candidates = enumerate_credible_values(replies, threshold)
    if not candidates:
        return None
    return min(candidates, key=lambda sel: (sel.timestamp, tiebreak_key(sel.value)))


def threshold_ignored(replies, threshold=1):
    """Mutant: the masking read forgets its vote threshold."""
    return select_credible_value(replies, 1)


# -- the shipped rule is safe, and the state space is pinned -------------------


class TestShippedRuleIsSafe:
    def test_pinned_forger_cell_is_exhaustively_safe(self):
        result = explore(PINNED_FORGER_SPEC)
        assert result.safe
        assert result.states_explored == 36
        assert result.schedules == 10

    def test_two_write_plain_cell_is_safe(self):
        result = explore(TWO_WRITE_SPEC)
        assert result.safe
        assert result.states_explored == 31
        assert result.schedules == 6

    def test_small_config_grid_is_safe(self):
        results = explore_grid()
        assert set(results) == {
            f"{kind}-{fault}"
            for kind in ("masking", "dissemination")
            for fault in ("benign", "crash", "forger")
        }
        for name, result in results.items():
            assert result.safe, f"{name}: {result.violation.render()}"
            assert result.schedules > 1 or name.endswith("forger")

    def test_grid_state_counts_are_stable(self):
        counts = {
            name: (result.states_explored, result.schedules)
            for name, result in explore_grid().items()
        }
        assert counts == {
            "masking-benign": (31, 13),
            "masking-crash": (51, 16),
            "masking-forger": (36, 10),
            "dissemination-benign": (31, 13),
            "dissemination-crash": (51, 16),
            "dissemination-forger": (36, 10),
        }


# -- seeded mutants are caught -------------------------------------------------


class TestMutantsAreCaught:
    def test_inverted_timestamp_mutant_violates_regularity(self):
        result = explore(TWO_WRITE_SPEC, selection_rule=lowest_timestamp_wins)
        assert not result.safe
        violation = result.violation
        assert violation.property == "regularity"
        assert "stale" in violation.message

    def test_inverted_timestamp_counterexample_is_minimised_and_replayable(self):
        violation = explore(
            TWO_WRITE_SPEC, selection_rule=lowest_timestamp_wins
        ).violation
        # Replaying the minimised script reproduces the same violation.
        replayed, trace = run_schedule(
            TWO_WRITE_SPEC, violation.script, selection_rule=lowest_timestamp_wins
        )
        assert replayed is not None
        assert replayed.property == violation.property
        assert trace == violation.trace
        # Local minimality: flipping any surviving non-default decision back
        # to the benign default makes the violation disappear.
        for index, decision in enumerate(violation.script):
            if decision == 0:
                continue
            candidate = list(violation.script)
            candidate[index] = 0
            weakened, _ = run_schedule(
                TWO_WRITE_SPEC, candidate, selection_rule=lowest_timestamp_wins
            )
            assert weakened is None or weakened.property != violation.property

    def test_inverted_timestamp_trace_is_readable(self):
        violation = explore(
            TWO_WRITE_SPEC, selection_rule=lowest_timestamp_wins
        ).violation
        report = violation.render()
        assert report.startswith("VIOLATION [regularity]")
        assert "schedule:" in report
        assert any("quorum" in step for step in violation.trace)

    def test_threshold_ignored_mutant_fabricates_on_the_pinned_cell(self):
        result = explore(PINNED_FORGER_SPEC, selection_rule=threshold_ignored)
        assert not result.safe
        violation = result.violation
        assert violation.property == "fabrication"
        assert "FORGED" in violation.message
        # The very first (all-default) schedule already exposes it, so the
        # minimiser reduces the script to nothing.
        assert violation.script == ()

    def test_shipped_rule_stays_safe_where_the_mutants_fail(self):
        assert explore(TWO_WRITE_SPEC).safe
        assert explore(PINNED_FORGER_SPEC).safe


# -- run_schedule / spec plumbing ----------------------------------------------


class TestRunSchedule:
    def test_default_schedule_of_a_safe_spec(self):
        violation, trace = run_schedule(PINNED_FORGER_SPEC, ())
        assert violation is None
        assert any("deliver" in step for step in trace)

    def test_schedule_budget_is_enforced(self):
        with pytest.raises(SimulationError):
            explore(TWO_WRITE_SPEC, max_schedules=2)


class TestExploreSpecValidation:
    def test_rejects_large_universes(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(n=7, quorum_size=3)

    def test_rejects_bad_quorum(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(n=4, quorum_size=5)

    def test_plain_and_dissemination_need_threshold_one(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(n=4, quorum_size=3, register_kind="plain", threshold=2)

    def test_rejects_unknown_register_kind(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(register_kind="grid")

    def test_rejects_too_many_faults(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(n=4, quorum_size=3, forgers=3, silent=2)

    def test_rejects_negative_budgets(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(max_drops=-1)

    def test_describe_mentions_the_faults(self):
        description = PINNED_FORGER_SPEC.describe()
        assert "masking" in description
        assert "forgers=1" in description
